package core

import (
	"errors"
	"fmt"
	"math"
)

// DomainClass identifies a domain's popularity class under the
// two-tier (RR2 / TTL-2) partitioning.
type DomainClass int

const (
	// ClassNormal marks a domain whose relative hidden load weight is
	// at or below the class threshold β.
	ClassNormal DomainClass = iota + 1
	// ClassHot marks a domain above the class threshold β.
	ClassHot
)

// String implements fmt.Stringer.
func (c DomainClass) String() string {
	switch c {
	case ClassNormal:
		return "normal"
	case ClassHot:
		return "hot"
	default:
		return fmt.Sprintf("DomainClass(%d)", int(c))
	}
}

// ErrNoServers is returned by Policy.Schedule when every server in the
// cluster is down: there is no address the DNS could meaningfully hand
// out, so the caller must answer "no server available" (SERVFAIL on
// the live path).
var ErrNoServers = errors.New("core: no server available")

// State is the information the DNS scheduler works from: the server
// cluster, the current estimate of each domain's hidden load weight,
// the two-tier class partition derived from those weights, the
// per-server alarm flags raised by the feedback mechanism, and the
// per-server liveness flags maintained by failure detection.
//
// State is mutated by the estimator (SetWeights), by server alarm
// signals (SetAlarm), and by the liveness machinery (SetDown);
// selectors and TTL policies read it on every address request.
//
// Alarms and liveness are distinct: an alarmed server is overloaded
// but serving (it is skipped unless every live server is alarmed),
// while a down server is gone and never eligible. Membership changes
// (SetDown) bump the state version so TTL policies recalibrate against
// the surviving cluster.
type State struct {
	cluster *Cluster
	beta    float64 // class threshold; hot iff weight > beta

	weights []float64     // relative hidden load weights, sum 1
	classes []DomainClass // derived from weights and beta
	wMax    float64       // weight of the most popular domain
	wHot    float64       // mean weight of the hot class
	wNormal float64       // mean weight of the normal class

	alarmed  []bool
	nAlarmed int

	down         []bool
	nDown        int
	nAlarmedLive int // servers both alarmed and not down

	// version increments whenever weights, β, or cluster membership
	// change, letting TTL policies cache their calibration until the
	// state moves.
	version uint64
}

// NewState creates scheduler state for the given cluster and number of
// connected domains. The class threshold defaults to the paper's
// β = 1/K. Initial weights are uniform; call SetWeights once estimates
// are available.
func NewState(cluster *Cluster, domains int) (*State, error) {
	if cluster == nil {
		return nil, errors.New("core: nil cluster")
	}
	if domains <= 0 {
		return nil, errors.New("core: need at least one domain")
	}
	s := &State{
		cluster: cluster,
		beta:    1 / float64(domains),
		alarmed: make([]bool, cluster.N()),
		down:    make([]bool, cluster.N()),
	}
	uniform := make([]float64, domains)
	for i := range uniform {
		uniform[i] = 1 / float64(domains)
	}
	if err := s.SetWeights(uniform); err != nil {
		return nil, err
	}
	return s, nil
}

// Cluster returns the server cluster.
func (s *State) Cluster() *Cluster { return s.cluster }

// Domains returns the number of connected domains.
func (s *State) Domains() int { return len(s.weights) }

// Beta returns the class threshold β.
func (s *State) Beta() float64 { return s.beta }

// SetBeta overrides the class threshold and recomputes the partition.
func (s *State) SetBeta(beta float64) {
	s.beta = beta
	s.reclassify()
}

// SetWeights installs new relative hidden load weight estimates. The
// weights are normalized to sum to one; the two-tier class partition
// and class means are recomputed. The number of domains must not
// change over the life of a State.
func (s *State) SetWeights(w []float64) error {
	if len(s.weights) != 0 && len(w) != len(s.weights) {
		return fmt.Errorf("core: weight vector length %d, want %d", len(w), len(s.weights))
	}
	var sum float64
	for i, v := range w {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: weight %d is %v, want non-negative finite", i, v)
		}
		sum += v
	}
	if sum <= 0 {
		return errors.New("core: weights sum to zero")
	}
	norm := make([]float64, len(w))
	for i, v := range w {
		norm[i] = v / sum
	}
	s.weights = norm
	s.reclassify()
	return nil
}

// Version returns a counter that increments whenever the weights or
// the class threshold change.
func (s *State) Version() uint64 { return s.version }

func (s *State) reclassify() {
	s.version++
	if len(s.classes) != len(s.weights) {
		s.classes = make([]DomainClass, len(s.weights))
	}
	s.wMax = 0
	var hotSum, normSum float64
	var hotN, normN int
	for _, v := range s.weights {
		if v > s.wMax {
			s.wMax = v
		}
	}
	for j, v := range s.weights {
		if v > s.beta {
			s.classes[j] = ClassHot
			hotSum += v
			hotN++
		} else {
			s.classes[j] = ClassNormal
			normSum += v
			normN++
		}
	}
	// Degenerate partitions (all domains in one class) fall back to the
	// overall mean so that TTL/2 stays well defined.
	mean := 1 / float64(len(s.weights))
	s.wHot, s.wNormal = mean, mean
	if hotN > 0 {
		s.wHot = hotSum / float64(hotN)
	}
	if normN > 0 {
		s.wNormal = normSum / float64(normN)
	}
}

// Weight returns the relative hidden load weight of domain j.
func (s *State) Weight(j int) float64 { return s.weights[j] }

// Weights returns a copy of the relative hidden load weight vector.
func (s *State) Weights() []float64 {
	out := make([]float64, len(s.weights))
	copy(out, s.weights)
	return out
}

// MaxWeight returns γ_max, the weight of the most popular domain.
func (s *State) MaxWeight() float64 { return s.wMax }

// Class returns the two-tier class of domain j.
func (s *State) Class(j int) DomainClass { return s.classes[j] }

// ClassMeanWeight returns the mean hidden load weight of a class,
// used by the two-class TTL policies.
func (s *State) ClassMeanWeight(c DomainClass) float64 {
	if c == ClassHot {
		return s.wHot
	}
	return s.wNormal
}

// HotDomains returns how many domains are currently in the hot class.
func (s *State) HotDomains() int {
	n := 0
	for _, c := range s.classes {
		if c == ClassHot {
			n++
		}
	}
	return n
}

// SetAlarm records an alarm (overloaded) or normal signal from server
// i. An out-of-range index is an error: it means a misconfigured or
// misbehaving reporter, which the caller should surface rather than
// silently drop.
func (s *State) SetAlarm(i int, alarmed bool) error {
	if i < 0 || i >= len(s.alarmed) {
		return fmt.Errorf("core: alarm for server %d out of range [0,%d)", i, len(s.alarmed))
	}
	if s.alarmed[i] != alarmed {
		s.alarmed[i] = alarmed
		delta := -1
		if alarmed {
			delta = 1
		}
		s.nAlarmed += delta
		if !s.down[i] {
			s.nAlarmedLive += delta
		}
	}
	return nil
}

// Alarmed reports whether server i has declared itself critically
// loaded.
func (s *State) Alarmed(i int) bool { return s.alarmed[i] }

// AllAlarmed reports whether every server is currently alarmed, in
// which case selectors ignore alarms (there is no better candidate).
func (s *State) AllAlarmed() bool { return s.nAlarmed == len(s.alarmed) }

// SetDown marks server i as failed (down=true) or recovered. A down
// server is excluded from every selector regardless of alarms; a
// membership change bumps the state version so TTL policies
// recalibrate against the surviving cluster.
func (s *State) SetDown(i int, down bool) error {
	if i < 0 || i >= len(s.down) {
		return fmt.Errorf("core: liveness for server %d out of range [0,%d)", i, len(s.down))
	}
	if s.down[i] == down {
		return nil
	}
	s.down[i] = down
	if down {
		s.nDown++
		if s.alarmed[i] {
			s.nAlarmedLive--
		}
	} else {
		s.nDown--
		if s.alarmed[i] {
			s.nAlarmedLive++
		}
	}
	s.version++
	return nil
}

// Down reports whether server i is currently marked failed.
func (s *State) Down(i int) bool { return s.down[i] }

// AllDown reports whether no server is live; Schedule then returns
// ErrNoServers.
func (s *State) AllDown() bool { return s.nDown == len(s.down) }

// LiveServers returns the number of servers not marked down.
func (s *State) LiveServers() int { return len(s.down) - s.nDown }

// available reports whether server i should be considered by a
// selector: live and not alarmed — unless every live server is
// alarmed, in which case alarms are ignored (there is no better
// candidate). A down server is never available.
func (s *State) available(i int) bool {
	if s.down[i] {
		return false
	}
	return !s.alarmed[i] || s.nAlarmedLive == len(s.down)-s.nDown
}
