package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// DomainClass identifies a domain's popularity class under the
// two-tier (RR2 / TTL-2) partitioning.
type DomainClass int

const (
	// ClassNormal marks a domain whose relative hidden load weight is
	// at or below the class threshold β.
	ClassNormal DomainClass = iota + 1
	// ClassHot marks a domain above the class threshold β.
	ClassHot
)

// String implements fmt.Stringer.
func (c DomainClass) String() string {
	switch c {
	case ClassNormal:
		return "normal"
	case ClassHot:
		return "hot"
	default:
		return fmt.Sprintf("DomainClass(%d)", int(c))
	}
}

// ErrNoServers is returned by Policy.Schedule when every server in the
// cluster is down: there is no address the DNS could meaningfully hand
// out, so the caller must answer "no server available" (SERVFAIL on
// the live path).
var ErrNoServers = errors.New("core: no server available")

// State is the information the DNS scheduler works from: the server
// cluster, the current estimate of each domain's hidden load weight,
// the two-tier class partition derived from those weights, the
// per-server alarm flags raised by the feedback mechanism, and the
// per-server liveness flags maintained by failure detection.
//
// State is mutated by the estimator (SetWeights), by server alarm
// signals (SetAlarm), and by the liveness machinery (SetDown);
// selectors and TTL policies read it on every address request.
//
// Concurrency: State publishes an immutable Snapshot through an atomic
// pointer. Readers (including Policy.Schedule) never block and may run
// concurrently with any mutator; mutators serialize among themselves
// on an internal mutex, rebuild the snapshot copy-on-write, and
// publish it atomically. A reader holding a Snapshot sees one frozen,
// internally consistent state; it does not observe later mutations.
//
// Alarms and liveness are distinct: an alarmed server is overloaded
// but serving (it is skipped unless every live server is alarmed),
// while a down server is gone and never eligible. Membership changes
// (SetDown) bump the state version so TTL policies recalibrate against
// the surviving cluster.
type State struct {
	mu   sync.Mutex // serializes mutators; readers never take it
	snap atomic.Pointer[Snapshot]

	// Transition counters for observability: how often the feedback
	// machinery actually changed a server's standing. Only real flips
	// count — a repeated identical signal is a no-op.
	alarmFlips atomic.Uint64
	downFlips  atomic.Uint64
}

// NewState creates scheduler state for the given cluster and number of
// connected domains. The class threshold defaults to the paper's
// β = 1/K. Initial weights are uniform; call SetWeights once estimates
// are available.
func NewState(cluster *Cluster, domains int) (*State, error) {
	if cluster == nil {
		return nil, errors.New("core: nil cluster")
	}
	if domains <= 0 {
		return nil, errors.New("core: need at least one domain")
	}
	sn := &Snapshot{
		cluster: cluster,
		beta:    1 / float64(domains),
		weights: make([]float64, domains),
		alarmed: make([]bool, cluster.N()),
		down:    make([]bool, cluster.N()),
	}
	for i := range sn.weights {
		sn.weights[i] = 1 / float64(domains)
	}
	sn.reclassify()
	s := &State{}
	s.snap.Store(sn)
	return s, nil
}

// Snapshot returns the current immutable view of the state. The
// returned value never changes; it is safe for unsynchronized
// concurrent use and is the unit the query hot path works from.
func (s *State) Snapshot() *Snapshot { return s.snap.Load() }

// Cluster returns the server cluster.
func (s *State) Cluster() *Cluster { return s.Snapshot().Cluster() }

// Domains returns the number of connected domains.
func (s *State) Domains() int { return s.Snapshot().Domains() }

// Beta returns the class threshold β.
func (s *State) Beta() float64 { return s.Snapshot().Beta() }

// SetBeta overrides the class threshold and recomputes the partition.
func (s *State) SetBeta(beta float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.snap.Load().clone()
	next.beta = beta
	next.reclassify()
	s.snap.Store(next)
}

// SetWeights installs new relative hidden load weight estimates. The
// weights are normalized to sum to one; the two-tier class partition
// and class means are recomputed. The number of domains must not
// change over the life of a State.
func (s *State) SetWeights(w []float64) error {
	var sum float64
	for i, v := range w {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: weight %d is %v, want non-negative finite", i, v)
		}
		sum += v
	}
	if sum <= 0 {
		return errors.New("core: weights sum to zero")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	if len(w) != len(cur.weights) {
		return fmt.Errorf("core: weight vector length %d, want %d", len(w), len(cur.weights))
	}
	next := cur.clone()
	for i, v := range w {
		next.weights[i] = v / sum
	}
	next.reclassify()
	s.snap.Store(next)
	return nil
}

// Version returns a counter that increments whenever the weights, the
// class threshold, or cluster membership change.
func (s *State) Version() uint64 { return s.Snapshot().Version() }

// Weight returns the relative hidden load weight of domain j.
func (s *State) Weight(j int) float64 { return s.Snapshot().Weight(j) }

// Weights returns a copy of the relative hidden load weight vector.
func (s *State) Weights() []float64 { return s.Snapshot().Weights() }

// MaxWeight returns γ_max, the weight of the most popular domain.
func (s *State) MaxWeight() float64 { return s.Snapshot().MaxWeight() }

// Class returns the two-tier class of domain j.
func (s *State) Class(j int) DomainClass { return s.Snapshot().Class(j) }

// ClassMeanWeight returns the mean hidden load weight of a class,
// used by the two-class TTL policies.
func (s *State) ClassMeanWeight(c DomainClass) float64 {
	return s.Snapshot().ClassMeanWeight(c)
}

// HotDomains returns how many domains are currently in the hot class.
func (s *State) HotDomains() int { return s.Snapshot().HotDomains() }

// SetAlarm records an alarm (overloaded) or normal signal from server
// i. An out-of-range index is an error: it means a misconfigured or
// misbehaving reporter, which the caller should surface rather than
// silently drop.
func (s *State) SetAlarm(i int, alarmed bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	if i < 0 || i >= len(cur.alarmed) {
		return fmt.Errorf("core: alarm for server %d out of range [0,%d)", i, len(cur.alarmed))
	}
	if cur.alarmed[i] == alarmed {
		return nil
	}
	next := cur.clone()
	next.alarmed[i] = alarmed
	delta := -1
	if alarmed {
		delta = 1
	}
	next.nAlarmed += delta
	if !next.down[i] {
		next.nAlarmedLive += delta
	}
	s.snap.Store(next)
	s.alarmFlips.Add(1)
	return nil
}

// AlarmTransitions returns how many SetAlarm calls changed a server's
// alarm flag since creation (repeated identical signals do not count).
func (s *State) AlarmTransitions() uint64 { return s.alarmFlips.Load() }

// DownTransitions returns how many SetDown calls changed a server's
// liveness since creation (repeated identical signals do not count).
func (s *State) DownTransitions() uint64 { return s.downFlips.Load() }

// Alarmed reports whether server i has declared itself critically
// loaded.
func (s *State) Alarmed(i int) bool { return s.Snapshot().Alarmed(i) }

// AllAlarmed reports whether every server is currently alarmed, in
// which case selectors ignore alarms (there is no better candidate).
func (s *State) AllAlarmed() bool { return s.Snapshot().AllAlarmed() }

// SetDown marks server i as failed (down=true) or recovered. A down
// server is excluded from every selector regardless of alarms; a
// membership change bumps the state version so TTL policies
// recalibrate against the surviving cluster.
func (s *State) SetDown(i int, down bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	if i < 0 || i >= len(cur.down) {
		return fmt.Errorf("core: liveness for server %d out of range [0,%d)", i, len(cur.down))
	}
	if cur.down[i] == down {
		return nil
	}
	next := cur.clone()
	next.down[i] = down
	if down {
		next.nDown++
		if next.alarmed[i] {
			next.nAlarmedLive--
		}
	} else {
		next.nDown--
		if next.alarmed[i] {
			next.nAlarmedLive++
		}
	}
	next.version++
	s.snap.Store(next)
	s.downFlips.Add(1)
	return nil
}

// Down reports whether server i is currently marked failed.
func (s *State) Down(i int) bool { return s.Snapshot().Down(i) }

// AllDown reports whether no server is live; Schedule then returns
// ErrNoServers.
func (s *State) AllDown() bool { return s.Snapshot().AllDown() }

// LiveServers returns the number of servers not marked down.
func (s *State) LiveServers() int { return s.Snapshot().LiveServers() }

// available reports whether server i should be considered by a
// selector under the current snapshot; see Snapshot.available.
func (s *State) available(i int) bool { return s.Snapshot().available(i) }
