package core

import (
	"math"
	"strings"
	"testing"

	"dnslb/internal/simcore"
)

func TestPolicyCatalogComplete(t *testing.T) {
	// Every algorithm named in the paper's figures must be buildable.
	wantNames := []string{
		"RR", "RR2", "DAL", "MRL", "WRR", "Ideal",
		"PRR-TTL/1", "PRR-TTL/2", "PRR-TTL/K",
		"PRR2-TTL/1", "PRR2-TTL/2", "PRR2-TTL/K",
		"DRR-TTL/S_1", "DRR-TTL/S_2", "DRR-TTL/S_K",
		"DRR2-TTL/S_1", "DRR2-TTL/S_2", "DRR2-TTL/S_K",
	}
	names := PolicyNames()
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	for _, w := range wantNames {
		if !set[w] {
			t.Errorf("catalog missing policy %q", w)
		}
	}
	if len(names) != len(wantNames) {
		t.Errorf("catalog has %d entries, want %d: %v", len(names), len(wantNames), names)
	}
}

func TestNewPolicyAllNames(t *testing.T) {
	st := zipfState(t, 35, 20)
	rng := simcore.NewStream(1, "policy")
	now := func() float64 { return 0 }
	for _, name := range PolicyNames() {
		p, err := NewPolicy(PolicyConfig{Name: name, State: st, Rand: rng, Now: now})
		if err != nil {
			t.Errorf("NewPolicy(%q) error: %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("Name = %q, want %q", p.Name(), name)
		}
		d, err := p.Schedule(3)
		if err != nil {
			t.Errorf("%s: Schedule error: %v", name, err)
			continue
		}
		if d.Server < 0 || d.Server >= st.Cluster().N() {
			t.Errorf("%s: server %d out of range", name, d.Server)
		}
		if d.TTL <= 0 {
			t.Errorf("%s: TTL %v not positive", name, d.TTL)
		}
	}
}

func TestNewPolicyErrors(t *testing.T) {
	st := zipfState(t, 20, 20)
	if _, err := NewPolicy(PolicyConfig{Name: "nope", State: st}); err == nil {
		t.Error("unknown name should error")
	} else if !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("error %q should mention unknown policy", err)
	}
	if _, err := NewPolicy(PolicyConfig{Name: "RR"}); err == nil {
		t.Error("missing state should error")
	}
	if _, err := NewPolicy(PolicyConfig{Name: "PRR-TTL/K", State: st}); err == nil {
		t.Error("PRR without Rand should error")
	}
	if _, err := NewPolicy(PolicyConfig{Name: "DAL", State: st}); err == nil {
		t.Error("DAL without Now should error")
	}
	if _, err := NewPolicyFromParts("x", nil, nil, nil); err == nil {
		t.Error("nil parts should error")
	}
}

func TestScheduleDomainValidation(t *testing.T) {
	st := zipfState(t, 20, 20)
	p, err := NewPolicy(PolicyConfig{Name: "RR", State: st})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Schedule(-1); err == nil {
		t.Error("negative domain should error")
	}
	if _, err := p.Schedule(20); err == nil {
		t.Error("domain out of range should error")
	}
}

func TestPolicyStats(t *testing.T) {
	st := zipfState(t, 20, 20)
	p, err := NewPolicy(PolicyConfig{Name: "DRR2-TTL/S_K", State: st})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := p.Schedule(i % 20); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if s.Decisions != 100 {
		t.Errorf("Decisions = %d, want 100", s.Decisions)
	}
	var per uint64
	for _, c := range s.PerServer {
		per += c
	}
	if per != 100 {
		t.Errorf("per-server counts sum to %d, want 100", per)
	}
	if s.PerClass[ClassHot]+s.PerClass[ClassNormal] != 100 {
		t.Errorf("per-class counts = %v, want sum 100", s.PerClass)
	}
	if s.MinTTL <= 0 || s.MaxTTL < s.MinTTL || s.MeanTTL < s.MinTTL || s.MeanTTL > s.MaxTTL {
		t.Errorf("TTL stats inconsistent: min %v mean %v max %v", s.MinTTL, s.MeanTTL, s.MaxTTL)
	}
	// Adaptive TTL spread: server-and-domain aware TTLs must differ.
	if s.MaxTTL-s.MinTTL < 1 {
		t.Errorf("TTL/S_K spread = %v, want substantial variation", s.MaxTTL-s.MinTTL)
	}
}

func TestTTLVariantExposed(t *testing.T) {
	st := zipfState(t, 20, 20)
	p, err := NewPolicy(PolicyConfig{Name: "DRR-TTL/S_2", State: st})
	if err != nil {
		t.Fatal(err)
	}
	v := p.TTLVariant()
	if v.Classes != TwoClasses || !v.ServerAware {
		t.Errorf("TTLVariant = %v, want TTL/S_2", v)
	}
	if p.State() != st {
		t.Error("State() should return the shared state")
	}
}

func TestRRBaselineUsesConstantTTL(t *testing.T) {
	st := zipfState(t, 20, 20)
	p, err := NewPolicy(PolicyConfig{Name: "RR", State: st})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d, err := p.Schedule(i % 20)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d.TTL-DefaultConstantTTL) > 1e-9 {
			t.Fatalf("RR TTL = %v, want constant %v", d.TTL, DefaultConstantTTL)
		}
	}
}

func TestCustomConstantTTL(t *testing.T) {
	st := zipfState(t, 20, 20)
	p, err := NewPolicy(PolicyConfig{Name: "RR", State: st, ConstantTTL: 300})
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Schedule(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.TTL-300) > 1e-9 {
		t.Errorf("TTL = %v, want 300", d.TTL)
	}
}

func TestEstimator(t *testing.T) {
	e, err := NewEstimator(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Before any roll: uniform.
	w := e.Weights()
	for _, v := range w {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Errorf("pre-roll weight = %v, want uniform 1/3", v)
		}
	}
	e.Record(0, 300)
	e.Record(1, 100)
	e.Record(2, 100)
	e.Roll(10)
	w = e.Weights()
	if math.Abs(w[0]-0.6) > 1e-12 || math.Abs(w[1]-0.2) > 1e-12 {
		t.Errorf("weights = %v, want [0.6 0.2 0.2]", w)
	}
	rates := e.Rates()
	if math.Abs(rates[0]-30) > 1e-12 {
		t.Errorf("rate[0] = %v, want 30 hits/s", rates[0])
	}
	if e.Rolls() != 1 {
		t.Errorf("Rolls = %d, want 1", e.Rolls())
	}
	// Invalid records are rejected — and the caller is told so.
	for _, bad := range []struct {
		domain int
		hits   float64
	}{{-1, 10}, {3, 10}, {0, -5}} {
		if e.Record(bad.domain, bad.hits) {
			t.Errorf("Record(%d, %v) should be rejected", bad.domain, bad.hits)
		}
	}
	if !e.Record(0, 1) {
		t.Error("valid Record should be accepted")
	}
	e.Roll(0) // no-op
	if e.Rolls() != 1 {
		t.Error("Roll(0) should be a no-op")
	}
}

func TestEstimatorEWMA(t *testing.T) {
	e, err := NewEstimator(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	e.Record(0, 100)
	e.Roll(10) // rates: [10, 0]
	e.Record(1, 100)
	e.Roll(10) // rates: [5, 5]
	rates := e.Rates()
	if math.Abs(rates[0]-5) > 1e-12 || math.Abs(rates[1]-5) > 1e-12 {
		t.Errorf("EWMA rates = %v, want [5 5]", rates)
	}
	// A domain that goes quiet decays but is not forgotten instantly.
	e.Roll(10)
	rates = e.Rates()
	if rates[0] != 2.5 {
		t.Errorf("decayed rate = %v, want 2.5", rates[0])
	}
}

func TestEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(0, 0.5); err == nil {
		t.Error("zero domains should error")
	}
	if _, err := NewEstimator(3, 0); err == nil {
		t.Error("alpha 0 should error")
	}
	if _, err := NewEstimator(3, 1.5); err == nil {
		t.Error("alpha > 1 should error")
	}
}

func TestEstimatorDrivesState(t *testing.T) {
	// End-to-end: estimator weights feed State and reclassify domains.
	st := zipfState(t, 20, 20)
	e, err := NewEstimator(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Observed traffic concentrated on domain 7.
	e.Record(7, 1000)
	for j := 0; j < 20; j++ {
		if j != 7 {
			e.Record(j, 10)
		}
	}
	e.Roll(60)
	if err := st.SetWeights(e.Weights()); err != nil {
		t.Fatal(err)
	}
	if st.Class(7) != ClassHot {
		t.Error("domain 7 should be classified hot from estimated weights")
	}
	if st.HotDomains() != 1 {
		t.Errorf("HotDomains = %d, want 1", st.HotDomains())
	}
}
