package core

import "sync"

// wrrSelector implements smooth weighted round robin (extension — the
// deterministic capacity-proportional rotation used by modern load
// balancers such as nginx and weighted DNS services). It is the
// natural present-day baseline next to the paper's probabilistic PRR:
// both assign servers in proportion to capacity; WRR does so without
// randomness and with the smoothest possible interleaving.
//
// Algorithm (Nginx's smooth WRR): each pick adds every available
// server's weight to its running current value, selects the largest
// current, then subtracts the total weight from the winner. Over any
// window the selection counts match the weights, and the winner
// sequence avoids bursts on the heavy server. The running values need
// a consistent read-modify-write across all servers, so the selector
// takes a local mutex (held for one O(N) pass).
type wrrSelector struct {
	mu      sync.Mutex
	current []float64
}

// NewWRR returns the smooth weighted round-robin selector; weights are
// the cluster's relative capacities.
func NewWRR() Selector { return &wrrSelector{} }

func (w *wrrSelector) Name() string { return "WRR" }

func (w *wrrSelector) Select(sn *Snapshot, _ int) int {
	n := sn.Cluster().N()
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.current) != n {
		w.current = make([]float64, n)
	}
	best := -1
	var total float64
	for i := 0; i < n; i++ {
		if !sn.available(i) {
			continue
		}
		weight := sn.Alpha(i)
		w.current[i] += weight
		total += weight
		if best == -1 || w.current[i] > w.current[best] {
			best = i
		}
	}
	if best == -1 {
		return -1
	}
	w.current[best] -= total
	return best
}
