package core

import "sync"

// Rand is the source of randomness required by the probabilistic
// selectors. simcore.Stream and math/rand generators satisfy it.
// Implementations need not be safe for concurrent use: constructors
// that share one Rand across concurrent callers wrap it with LockRand.
type Rand interface {
	Float64() float64
}

// lockedRand serializes draws from a shared underlying generator so
// probabilistic selectors stay safe under concurrent Schedule calls.
// Single-threaded callers see the exact same draw sequence as with the
// bare generator, preserving simulation determinism.
type lockedRand struct {
	mu sync.Mutex
	r  Rand
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	v := l.r.Float64()
	l.mu.Unlock()
	return v
}

// LockRand wraps a Rand with a mutex so it can be shared by concurrent
// callers. It is idempotent: an already-locked Rand is returned as is,
// so components that share one generator (a selector and its proximity
// wrapper) also share one lock. A nil Rand stays nil.
func LockRand(r Rand) Rand {
	if r == nil {
		return nil
	}
	if _, ok := r.(*lockedRand); ok {
		return r
	}
	return &lockedRand{r: r}
}
