package experiments

import (
	"fmt"
	"sort"

	"dnslb/internal/core"
	"dnslb/internal/sim"
)

// The metric level of Figures 3–7: Prob(MaxUtilization < 0.98),
// the paper's 98th-percentile view of the maximum utilization.
const metricLevel = 0.98

// cdfFigure runs one cumulative-frequency figure (Figures 1 and 2):
// one curve per policy at a fixed heterogeneity level.
func cdfFigure(id, title string, hetPct int, policies []string, o Options) (*Figure, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	levels := utilizationLevels(o.CurvePoints)
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "Max Utilization",
		YLabel: "Cumulative Frequency",
		XVals:  levels,
	}
	fig.Series = make([]Series, len(policies))
	err := forEachLimit(len(policies), o.Workers, func(p int) error {
		pol := policies[p]
		cfg := sim.DefaultConfig(pol)
		cfg.HeterogeneityPct = hetPct
		if pol == "Ideal" {
			cfg.Workload.Uniform = true
		}
		values, err := runCurve(cfg, o, levels)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", id, pol, err)
		}
		fig.Series[p] = Series{Name: pol, Values: values}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Figure1 reproduces "Deterministic algorithms (Het. 20%)": the
// cumulative frequency of the maximum server utilization for the
// RR-based deterministic adaptive-TTL policies, bracketed by the Ideal
// envelope above and conventional RR below.
func Figure1(o Options) (*Figure, error) {
	return cdfFigure("fig1", "Deterministic algorithms (Het. 20%)", 20,
		[]string{
			"Ideal",
			"DRR2-TTL/S_K", "DRR-TTL/S_K",
			"DRR2-TTL/S_2", "DRR-TTL/S_2",
			"DRR2-TTL/S_1", "DRR-TTL/S_1",
			"RR",
		}, o)
}

// Figure2 reproduces "Probabilistic algorithms (Het. 35%)": the same
// metric for the PRR-based policies whose TTL depends on the domain
// only.
func Figure2(o Options) (*Figure, error) {
	return cdfFigure("fig2", "Probabilistic algorithms (Het. 35%)", 35,
		[]string{
			"Ideal",
			"PRR2-TTL/K", "PRR-TTL/K",
			"PRR2-TTL/2", "PRR-TTL/2",
			"PRR2-TTL/1", "PRR-TTL/1",
			"RR",
		}, o)
}

// sweepFigure runs one Prob(MaxUtil < 0.98) sweep figure: for each x
// value, mutate derives a sim config per policy.
func sweepFigure(id, title, xlabel string, xs []float64, policies []string,
	o Options, mutate func(cfg *sim.Config, x float64)) (*Figure, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: xlabel,
		YLabel: "Prob(MaxUtilization < 0.98)",
		XVals:  xs,
	}
	fig.Series = make([]Series, len(policies))
	for p, pol := range policies {
		fig.Series[p] = Series{Name: pol, Values: make([]float64, len(xs)), HalfWidths: make([]float64, len(xs))}
	}
	// Fan the independent (policy × point) simulations across the
	// worker budget; each unit writes its own slot, so assembly order
	// is deterministic regardless of completion order.
	err := forEachLimit(len(policies)*len(xs), o.Workers, func(u int) error {
		p, i := u/len(xs), u%len(xs)
		pol, x := policies[p], xs[i]
		cfg := sim.DefaultConfig(pol)
		if pol == "Ideal" {
			cfg.Workload.Uniform = true
		}
		mutate(&cfg, x)
		mean, hw, err := runProb(cfg, o, metricLevel)
		if err != nil {
			return fmt.Errorf("%s/%s x=%v: %w", id, pol, x, err)
		}
		fig.Series[p].Values[i] = mean
		fig.Series[p].HalfWidths[i] = hw
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Figure3 reproduces "Sensitivity to system heterogeneity": the
// 98th-percentile metric as heterogeneity grows from 20% to 65%,
// including the capacity-aware DAL baseline that demonstrates
// homogeneous-system policies do not transfer.
func Figure3(o Options) (*Figure, error) {
	return sweepFigure("fig3", "Sensitivity to system heterogeneity",
		"Heterogeneity (max difference among server capacities %)",
		[]float64{20, 35, 50, 65},
		[]string{"DRR2-TTL/S_K", "DRR2-TTL/S_2", "PRR2-TTL/K", "PRR2-TTL/2", "DAL", "RR"},
		o,
		func(cfg *sim.Config, x float64) { cfg.HeterogeneityPct = int(x) })
}

// minTTLXs is the sweep over the minimum TTL imposed by
// non-cooperative name servers, in seconds.
var minTTLXs = []float64{0, 60, 120, 180, 240, 300}

// minTTLPolicies are the adaptive schemes compared in Figures 4 and 5.
var minTTLPolicies = []string{
	"DRR2-TTL/S_K", "DRR-TTL/S_K", "PRR2-TTL/K", "PRR-TTL/K", "PRR2-TTL/2",
}

// Figure4 reproduces "Sensitivity to minimum TTL (Het. 20%)": the
// worst-case scenario where every NS raises any proposed TTL below the
// x-axis threshold.
func Figure4(o Options) (*Figure, error) {
	return sweepFigure("fig4", "Sensitivity to minimum TTL (Het. 20%)",
		"Minimum TTL (sec)", minTTLXs, minTTLPolicies, o,
		func(cfg *sim.Config, x float64) {
			cfg.HeterogeneityPct = 20
			cfg.MinNSTTL = x
		})
}

// Figure5 reproduces "Sensitivity to minimum TTL (Het. 50%)".
func Figure5(o Options) (*Figure, error) {
	return sweepFigure("fig5", "Sensitivity to minimum TTL (Het. 50%)",
		"Minimum TTL (sec)", minTTLXs, minTTLPolicies, o,
		func(cfg *sim.Config, x float64) {
			cfg.HeterogeneityPct = 50
			cfg.MinNSTTL = x
		})
}

// errorXs is the sweep over the maximum error in estimating the domain
// hidden load weight, in percent.
var errorXs = []float64{0, 10, 20, 30, 40, 50}

// errorPolicies are the eight adaptive schemes compared in Figures 6–7.
var errorPolicies = []string{
	"DRR2-TTL/S_K", "DRR-TTL/S_K", "PRR2-TTL/K", "PRR-TTL/K",
	"DRR2-TTL/S_2", "DRR-TTL/S_2", "PRR2-TTL/2", "PRR-TTL/2",
}

// Figure6 reproduces "Sensitivity to error in estimating the domain
// hidden load weight (Het. 20%)": the busiest domain's actual rate is
// inflated by the x-axis percentage while the DNS keeps stale
// estimates.
func Figure6(o Options) (*Figure, error) {
	return sweepFigure("fig6", "Sensitivity to estimation error (Het. 20%)",
		"Estimation Error %", errorXs, errorPolicies, o,
		func(cfg *sim.Config, x float64) {
			cfg.HeterogeneityPct = 20
			cfg.Workload.PerturbationPct = x
		})
}

// Figure7 reproduces the same sensitivity at 50% heterogeneity, where
// the two-class schemes degrade substantially.
func Figure7(o Options) (*Figure, error) {
	return sweepFigure("fig7", "Sensitivity to estimation error (Het. 50%)",
		"Estimation Error %", errorXs, errorPolicies, o,
		func(cfg *sim.Config, x float64) {
			cfg.HeterogeneityPct = 50
			cfg.Workload.PerturbationPct = x
		})
}

// Table2 reproduces the paper's Table 2: the relative server
// capacities of the four heterogeneity levels.
func Table2() (*Figure, error) {
	fig := &Figure{
		ID:     "table2",
		Title:  "Parameters of the heterogeneity levels (relative capacities)",
		XLabel: "Server",
		YLabel: "Relative capacity",
		XVals:  []float64{1, 2, 3, 4, 5, 6, 7},
	}
	for _, level := range []int{20, 35, 50, 65} {
		v, err := core.HeterogeneityVector(7, level)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, Series{Name: fmt.Sprintf("%d%%", level), Values: v})
	}
	return fig, nil
}

// Runner executes one experiment.
type Runner func(Options) (*Figure, error)

// Registry maps experiment IDs to their runners: the paper's figures
// (fig1..fig7, table2) plus the extension sweeps and ablations defined
// in extensions.go. Table 1 is a plain parameter echo handled by the
// CLI; Table 2 ignores options.
var Registry = map[string]Runner{
	"fig1":   Figure1,
	"fig2":   Figure2,
	"fig3":   Figure3,
	"fig4":   Figure4,
	"fig5":   Figure5,
	"fig6":   Figure6,
	"fig7":   Figure7,
	"table2": func(Options) (*Figure, error) { return Table2() },

	"ext-domains":     ExtDomains,
	"ext-servers":     ExtServers,
	"ext-load":        ExtLoad,
	"ext-classes":     ExtClasses,
	"ext-alarm":       ExtAlarm,
	"ext-window":      ExtWindow,
	"ext-estimator":   ExtEstimator,
	"ext-failures":    ExtFailures,
	"ext-forecast":    ExtForecast,
	"ext-geo":         ExtGeo,
	"ext-baselines":   ExtBaselines,
	"ext-probes":      ExtProbes,
	"ext-replication": ExtReplication,
}

// PaperIDs returns the experiment IDs that reproduce the paper's own
// evaluation, in figure order.
func PaperIDs() []string {
	return []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table2"}
}

// ExtensionIDs returns the experiment IDs that go beyond the paper.
func ExtensionIDs() []string {
	return []string{
		"ext-alarm", "ext-baselines", "ext-classes", "ext-domains",
		"ext-estimator", "ext-failures", "ext-forecast", "ext-geo",
		"ext-load", "ext-probes", "ext-replication", "ext-servers", "ext-window",
	}
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
