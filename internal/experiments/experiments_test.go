package experiments

import (
	"bytes"
	"strings"
	"testing"

	"dnslb/internal/sim"
)

// tinyOptions keeps unit-test runtimes low.
func tinyOptions() Options {
	return Options{Duration: 900, Warmup: 300, Reps: 1, Seed: 7, CurvePoints: 6}
}

func TestOptionsValidate(t *testing.T) {
	good := DefaultOptions()
	if err := good.validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	if err := QuickOptions().validate(); err != nil {
		t.Fatalf("quick options invalid: %v", err)
	}
	bad := []Options{
		{Duration: 0, Reps: 1, CurvePoints: 2},
		{Duration: 1, Warmup: -1, Reps: 1, CurvePoints: 2},
		{Duration: 1, Reps: 0, CurvePoints: 2},
		{Duration: 1, Reps: 1, CurvePoints: 1},
	}
	for i, o := range bad {
		if err := o.validate(); err == nil {
			t.Errorf("bad options %d should error", i)
		}
	}
}

func TestRegistryCoversEveryFigure(t *testing.T) {
	ids := IDs()
	set := make(map[string]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	for _, id := range PaperIDs() {
		if !set[id] {
			t.Errorf("registry missing paper experiment %q", id)
		}
	}
	for _, id := range ExtensionIDs() {
		if !set[id] {
			t.Errorf("registry missing extension experiment %q", id)
		}
	}
	if len(ids) != len(PaperIDs())+len(ExtensionIDs()) {
		t.Errorf("registry has %d entries, want %d: %v",
			len(ids), len(PaperIDs())+len(ExtensionIDs()), ids)
	}
}

func TestExtensionExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs every extension experiment")
	}
	o := tinyOptions()
	for _, id := range ExtensionIDs() {
		fig, err := Registry[id](o)
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if fig.ID != id {
			t.Errorf("%s: figure ID %q", id, fig.ID)
		}
		if len(fig.Series) == 0 || len(fig.XVals) == 0 {
			t.Errorf("%s: empty figure", id)
		}
		for _, s := range fig.Series {
			if len(s.Values) != len(fig.XVals) {
				t.Errorf("%s/%s: %d values for %d x", id, s.Name, len(s.Values), len(fig.XVals))
			}
			for i, v := range s.Values {
				if id == "ext-probes" {
					// Detection latencies in seconds, not probabilities.
					if v < 0 {
						t.Errorf("%s/%s[%d]: negative detection delay %v", id, s.Name, i, v)
					}
					continue
				}
				if id == "ext-forecast" && strings.Contains(s.Name, "alarm delay") {
					// Delays are measured in collection intervals, not
					// probabilities; negative would mean the estimator
					// alarmed before the flash even started.
					if v < 0 {
						t.Errorf("%s/%s[%d]: alarm delay %v precedes the flash onset", id, s.Name, i, v)
					}
					continue
				}
				if v < 0 || v > 1 {
					t.Errorf("%s/%s[%d]: probability %v out of range", id, s.Name, i, v)
				}
			}
		}
	}
}

func TestExtensionOptionValidation(t *testing.T) {
	bad := tinyOptions()
	bad.Reps = 0
	for _, id := range []string{"ext-classes", "ext-estimator"} {
		if _, err := Registry[id](bad); err == nil {
			t.Errorf("%s: invalid options should error", id)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	fig, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("Table 2 has %d levels, want 4", len(fig.Series))
	}
	v, err := fig.Value("50%", 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.5 {
		t.Errorf("Table 2, 50%% level, server 5 = %v, want 0.5", v)
	}
	if _, err := fig.Value("nope", 0); err == nil {
		t.Error("unknown series should error")
	}
	if _, err := fig.Value("50%", 99); err == nil {
		t.Error("out-of-range index should error")
	}
}

func TestCDFFigureStructure(t *testing.T) {
	fig, err := cdfFigure("figX", "test", 20, []string{"RR", "DRR2-TTL/S_K"}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	if len(fig.XVals) != 6 {
		t.Fatalf("x values = %d, want CurvePoints", len(fig.XVals))
	}
	for _, s := range fig.Series {
		if len(s.Values) != len(fig.XVals) {
			t.Fatalf("%s: %d values for %d x", s.Name, len(s.Values), len(fig.XVals))
		}
		// CDF curves are monotone non-decreasing and end at 1 (the final
		// level is 1.0 and utilization never exceeds 1).
		for i := 1; i < len(s.Values); i++ {
			if s.Values[i] < s.Values[i-1]-1e-9 {
				t.Errorf("%s: curve not monotone at %d", s.Name, i)
			}
		}
		last := s.Values[len(s.Values)-1]
		if last != 1 {
			t.Errorf("%s: cumulative frequency at level 1.0 = %v, want 1", s.Name, last)
		}
	}
}

func TestSweepFigureStructure(t *testing.T) {
	fig, err := sweepFigure("figY", "test", "x", []float64{20, 50},
		[]string{"RR"}, tinyOptions(),
		func(cfg *sim.Config, x float64) { cfg.HeterogeneityPct = int(x) })
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.Values) != 2 || len(s.HalfWidths) != 2 {
		t.Fatalf("series shape wrong: %+v", s)
	}
	for _, v := range s.Values {
		if v < 0 || v > 1 {
			t.Errorf("probability %v out of [0,1]", v)
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	_, err := sweepFigure("figZ", "test", "x", []float64{1}, []string{"bogus"},
		tinyOptions(), func(*sim.Config, float64) {})
	if err == nil {
		t.Error("unknown policy should propagate an error")
	}
	if _, err := cdfFigure("figZ", "t", 20, []string{"bogus"}, tinyOptions()); err == nil {
		t.Error("cdf with unknown policy should error")
	}
	bad := tinyOptions()
	bad.Reps = 0
	if _, err := cdfFigure("figZ", "t", 20, []string{"RR"}, bad); err == nil {
		t.Error("invalid options should error")
	}
}

func TestRenderText(t *testing.T) {
	fig := &Figure{
		ID: "fig0", Title: "demo", XLabel: "x", YLabel: "y",
		XVals: []float64{1, 2},
		Series: []Series{
			{Name: "A", Values: []float64{0.5, 0.75}},
			{Name: "B", Values: []float64{0.25}},
		},
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# fig0 — demo", "A", "B", "0.5000", "0.7500", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	fig := &Figure{
		ID: "fig0", Title: "demo", XLabel: "x,label", YLabel: "y",
		XVals:  []float64{1},
		Series: []Series{{Name: "A", Values: []float64{0.5}}},
	}
	var buf bytes.Buffer
	if err := fig.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want 2", len(lines))
	}
	if lines[0] != `"x,label",A` {
		t.Errorf("csv header = %q", lines[0])
	}
	if lines[1] != "1,0.500000" {
		t.Errorf("csv row = %q", lines[1])
	}
}

func TestTrimFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{1, "1"}, {0.5, "0.5"}, {0.98, "0.98"}, {240, "240"}, {0, "0"},
	}
	for _, tt := range tests {
		if got := trimFloat(tt.in); got != tt.want {
			t.Errorf("trimFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestFigure1ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long: simulates several policies")
	}
	o := tinyOptions()
	o.Duration = 1800
	o.CurvePoints = 11
	fig, err := cdfFigure("fig1", "t", 20, []string{"Ideal", "DRR2-TTL/S_K", "RR"}, o)
	if err != nil {
		t.Fatal(err)
	}
	// At the 0.9 level (index 8 of 0.5..1.0 step 0.05) the ordering
	// Ideal ≈ DRR2-TTL/S_K >> RR must hold.
	ideal, _ := fig.Value("Ideal", 8)
	best, _ := fig.Value("DRR2-TTL/S_K", 8)
	rr, _ := fig.Value("RR", 8)
	if best <= rr {
		t.Errorf("DRR2-TTL/S_K (%v) must beat RR (%v)", best, rr)
	}
	if ideal < best-0.25 {
		t.Errorf("Ideal (%v) should not be far below DRR2-TTL/S_K (%v)", ideal, best)
	}
}
