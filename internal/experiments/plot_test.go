package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func plotFigure() *Figure {
	return &Figure{
		ID: "figP", Title: "plot demo", XLabel: "x", YLabel: "P",
		XVals: []float64{0, 50, 100},
		Series: []Series{
			{Name: "up", Values: []float64{0, 0.5, 1}},
			{Name: "down", Values: []float64{1, 0.5, 0}},
		},
	}
}

func TestRenderPlotBasics(t *testing.T) {
	var buf bytes.Buffer
	if err := plotFigure().RenderPlot(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"figP — plot demo",
		"1.00", "0.00",
		"x: x, y: P",
		"* up",
		"o down",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Both markers appear in the grid.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing from grid")
	}
}

func TestRenderPlotEndpointPositions(t *testing.T) {
	var buf bytes.Buffer
	fig := &Figure{
		ID: "figQ", Title: "t", XLabel: "x", YLabel: "y",
		XVals:  []float64{0, 100},
		Series: []Series{{Name: "s", Values: []float64{1, 0}}},
	}
	if err := fig.RenderPlot(&buf, 30, 7); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	// Row 1 (after the title) is y=1: marker at the left edge.
	top := lines[1]
	if !strings.Contains(top, "|*") {
		t.Errorf("top row should start with the y=1 endpoint: %q", top)
	}
	bottom := lines[7]
	if !strings.Contains(bottom, "*|") {
		t.Errorf("bottom row should end with the y=0 endpoint: %q", bottom)
	}
}

func TestRenderPlotClampsTinyDimensions(t *testing.T) {
	var buf bytes.Buffer
	if err := plotFigure().RenderPlot(&buf, 1, 1); err != nil {
		t.Fatal(err)
	}
	if len(buf.String()) == 0 {
		t.Error("no output")
	}
}

func TestRenderPlotEmptyFigure(t *testing.T) {
	var buf bytes.Buffer
	empty := &Figure{ID: "figE"}
	if err := empty.RenderPlot(&buf, 40, 10); err == nil {
		t.Error("empty figure should error")
	}
}

func TestRenderPlotDegenerateXRange(t *testing.T) {
	fig := &Figure{
		ID: "figD", Title: "t", XLabel: "x", YLabel: "y",
		XVals:  []float64{5},
		Series: []Series{{Name: "s", Values: []float64{0.5}}},
	}
	var buf bytes.Buffer
	if err := fig.RenderPlot(&buf, 30, 7); err != nil {
		t.Fatal(err)
	}
}
