// Package experiments defines one runnable experiment per table and
// figure of the paper's evaluation (Section 5), producing the same
// rows/series the paper reports: cumulative-frequency curves of the
// maximum server utilization (Figures 1–2) and Prob(MaxUtilization <
// 0.98) sweeps over heterogeneity, minimum TTL, and estimation error
// (Figures 3–7).
package experiments

import (
	"errors"
	"fmt"
	"sync"

	"dnslb/internal/sim"
	"dnslb/internal/stats"
)

// Options controls how an experiment is executed.
type Options struct {
	// Duration is the virtual measurement time per run in seconds
	// (paper: 5 h).
	Duration float64
	// Warmup is discarded virtual time before measurement.
	Warmup float64
	// Reps is the number of independent replications per point; the
	// reported value is their mean.
	Reps int
	// Seed is the base random seed.
	Seed uint64
	// CurvePoints is the number of x samples for CDF figures.
	CurvePoints int
	// Workers bounds how many independent simulation runs execute
	// concurrently while producing a figure (policy × point fan-out).
	// 0 or 1 keeps the fully sequential path. Parallel execution
	// yields identical numbers: every run is independently seeded and
	// results are assembled in deterministic order.
	Workers int
}

// DefaultOptions reproduces the paper's setup: five simulated hours,
// three replications.
func DefaultOptions() Options {
	return Options{
		Duration:    5 * 3600,
		Warmup:      600,
		Reps:        3,
		Seed:        1,
		CurvePoints: 21,
	}
}

// QuickOptions trades precision for speed: one simulated hour, one
// replication. Useful for smoke runs and CI.
func QuickOptions() Options {
	return Options{
		Duration:    3600,
		Warmup:      600,
		Reps:        1,
		Seed:        1,
		CurvePoints: 21,
	}
}

func (o Options) validate() error {
	switch {
	case o.Duration <= 0:
		return errors.New("experiments: Duration must be positive")
	case o.Warmup < 0:
		return errors.New("experiments: Warmup must be non-negative")
	case o.Reps <= 0:
		return errors.New("experiments: Reps must be positive")
	case o.CurvePoints < 2:
		return errors.New("experiments: CurvePoints must be at least 2")
	}
	return nil
}

// Series is one labelled curve of a figure.
type Series struct {
	Name string
	// Values aligns with the figure's XValues.
	Values []float64
	// HalfWidths are the 95% confidence half-widths when Reps > 1
	// (nil otherwise), aligned with Values.
	HalfWidths []float64
}

// Figure is the reproduced data behind one paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	XVals  []float64
	Series []Series
}

// seriesAt returns the named series, for tests and report generation.
func (f *Figure) seriesAt(name string) (Series, bool) {
	for _, s := range f.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// Value returns the y value of the named series at the x index.
func (f *Figure) Value(name string, i int) (float64, error) {
	s, ok := f.seriesAt(name)
	if !ok {
		return 0, fmt.Errorf("experiments: figure %s has no series %q", f.ID, name)
	}
	if i < 0 || i >= len(s.Values) {
		return 0, fmt.Errorf("experiments: index %d out of range", i)
	}
	return s.Values[i], nil
}

// applyOptions copies the experiment options onto a sim config.
func applyOptions(cfg *sim.Config, o Options) {
	cfg.Duration = o.Duration
	cfg.Warmup = o.Warmup
	cfg.Seed = o.Seed
}

// runReps executes the point's replications, in parallel when the
// options carry a worker budget. Parallel and sequential replication
// results are identical (see sim.RunReplicationsParallel).
func runReps(cfg sim.Config, o Options) ([]*sim.Result, error) {
	if o.Workers > 1 {
		return sim.RunReplicationsParallel(cfg, o.Reps, o.Workers)
	}
	return sim.RunReplications(cfg, o.Reps)
}

// runProb returns the mean and CI half-width of Prob(MaxUtil < level)
// over o.Reps replications of cfg.
func runProb(cfg sim.Config, o Options, level float64) (float64, float64, error) {
	applyOptions(&cfg, o)
	results, err := runReps(cfg, o)
	if err != nil {
		return 0, 0, err
	}
	iv := sim.ProbMaxUnderCI(results, level, 0.95)
	hw := iv.HalfWide
	if o.Reps < 2 {
		hw = 0
	}
	return iv.Mean, hw, nil
}

// runCurve returns the mean cumulative-frequency curve of the maximum
// utilization at the given levels over o.Reps replications.
func runCurve(cfg sim.Config, o Options, levels []float64) ([]float64, error) {
	applyOptions(&cfg, o)
	results, err := runReps(cfg, o)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(levels))
	for i, x := range levels {
		var w stats.Welford
		for _, r := range results {
			w.Add(r.ProbMaxUnder(x))
		}
		out[i] = w.Mean()
	}
	return out, nil
}

// forEachLimit runs f(0..n-1) across at most `workers` goroutines and
// returns the lowest-index error, so parallel figure production fails
// the same way the sequential loop would. workers <= 1 (or n == 1)
// keeps the plain sequential loop.
func forEachLimit(n, workers int, f func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// utilizationLevels returns the x axis of the CDF figures.
func utilizationLevels(points int) []float64 {
	const lo, hi = 0.5, 1.0
	out := make([]float64, points)
	step := (hi - lo) / float64(points-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}
