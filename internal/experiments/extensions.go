package experiments

import (
	"fmt"
	"math"

	"dnslb/internal/core"
	"dnslb/internal/sim"
	"dnslb/internal/stats"
)

// This file defines experiments beyond the paper's figures: the
// parameter sweeps the paper mentions but does not plot (number of
// domains, number of servers, offered load) and ablations of the
// design choices DESIGN.md calls out (class count i, the alarm
// mechanism, the metric window, oracle vs dynamic estimation, and the
// DAL/MRL baseline pair).

// ExtDomains sweeps the number of connected domains K over the paper's
// stated range 10–100 (Table 1). More domains = finer-grained hidden
// load units, which helps every policy; the adaptive schemes keep
// their lead throughout.
func ExtDomains(o Options) (*Figure, error) {
	return sweepFigure("ext-domains", "Sensitivity to the number of connected domains",
		"Connected domains K",
		[]float64{10, 20, 50, 100},
		[]string{"DRR2-TTL/S_K", "PRR2-TTL/K", "PRR2-TTL/2", "RR"},
		o,
		func(cfg *sim.Config, x float64) { cfg.Workload.Domains = int(x) })
}

// ExtServers sweeps the cluster size N over the paper's stated range
// 5–17 (Table 1) at constant total capacity: more servers mean smaller
// per-server capacity, so a single hot-domain mapping hurts more.
func ExtServers(o Options) (*Figure, error) {
	return sweepFigure("ext-servers", "Sensitivity to the number of Web servers",
		"Web servers N",
		[]float64{5, 7, 11, 17},
		[]string{"DRR2-TTL/S_K", "PRR2-TTL/K", "PRR2-TTL/2", "RR"},
		o,
		func(cfg *sim.Config, x float64) { cfg.Servers = int(x) })
}

// ExtLoad sweeps the offered load by varying the mean think time
// (Table 1 range 0–30 s): think 12 s ≈ 83% average utilization,
// think 30 s ≈ 33%.
func ExtLoad(o Options) (*Figure, error) {
	return sweepFigure("ext-load", "Sensitivity to offered load (mean think time)",
		"Mean think time (s)",
		[]float64{12, 15, 20, 30},
		[]string{"DRR2-TTL/S_K", "PRR2-TTL/K", "RR"},
		o,
		func(cfg *sim.Config, x float64) { cfg.Workload.MeanThinkTime = x })
}

// ExtClasses ablates the TTL/i meta-algorithm's class count at 35%
// heterogeneity: i = 1 is the constant-TTL degenerate case, i = K the
// per-domain limit. The paper evaluates only i ∈ {1, 2, K}; this sweep
// fills in the middle and shows where the returns diminish.
func ExtClasses(o Options) (*Figure, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	counts := []float64{1, 2, 3, 4, 6, 8, 20}
	fig := &Figure{
		ID:     "ext-classes",
		Title:  "TTL/i class-count ablation (Het. 35%)",
		XLabel: "TTL classes i (20 = per-domain)",
		YLabel: "Prob(MaxUtilization < 0.98)",
		XVals:  counts,
	}
	families := []struct {
		label   string
		pattern string
	}{
		{label: "DRR2-TTL/S_i", pattern: "DRR2-TTL/S_%d"},
		{label: "PRR2-TTL/i", pattern: "PRR2-TTL/%d"},
	}
	for _, family := range families {
		s := Series{Name: family.label, Values: make([]float64, len(counts)), HalfWidths: make([]float64, len(counts))}
		for idx, c := range counts {
			cfg := sim.DefaultConfig(fmt.Sprintf(family.pattern, int(c)))
			cfg.HeterogeneityPct = 35
			mean, hw, err := runProb(cfg, o, metricLevel)
			if err != nil {
				return nil, fmt.Errorf("ext-classes/%s i=%v: %w", family.label, c, err)
			}
			s.Values[idx] = mean
			s.HalfWidths[idx] = hw
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// ExtAlarm ablates the asynchronous alarm feedback: threshold 0
// disables it entirely; lower thresholds exclude servers earlier.
// The paper assumes θ = 0.9 for every algorithm.
func ExtAlarm(o Options) (*Figure, error) {
	return sweepFigure("ext-alarm", "Alarm-threshold ablation (Het. 35%)",
		"Alarm threshold θ (0 = no feedback)",
		[]float64{0, 0.7, 0.8, 0.9, 0.95},
		[]string{"DRR2-TTL/S_K", "PRR2-TTL/2", "RR"},
		o,
		func(cfg *sim.Config, x float64) {
			cfg.HeterogeneityPct = 35
			cfg.AlarmThreshold = x
		})
}

// ExtWindow ablates the metric observation window, the one parameter
// this reproduction chose itself (DESIGN.md §7): the policy ordering
// must be window-invariant even though absolute levels shift.
func ExtWindow(o Options) (*Figure, error) {
	return sweepFigure("ext-window", "Metric-window ablation (Het. 20%)",
		"Metric window (s)",
		[]float64{8, 16, 32, 64, 128},
		[]string{"Ideal", "DRR2-TTL/S_K", "PRR2-TTL/2", "RR"},
		o,
		func(cfg *sim.Config, x float64) { cfg.MetricWindow = x })
}

// ExtEstimator compares the paper's oracle hidden-load weights against
// the dynamic estimator at several collection intervals. Short
// intervals are noisy, long intervals stale; both bracket the oracle.
func ExtEstimator(o Options) (*Figure, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	intervals := []float64{15, 30, 60, 120, 240}
	fig := &Figure{
		ID:     "ext-estimator",
		Title:  "Dynamic hidden-load estimation vs oracle (Het. 35%)",
		XLabel: "Estimator collection interval (s)",
		YLabel: "Prob(MaxUtilization < 0.98)",
		XVals:  intervals,
	}
	for _, mode := range []string{"oracle", "estimator"} {
		s := Series{Name: "DRR2-TTL/S_K " + mode, Values: make([]float64, len(intervals)), HalfWidths: make([]float64, len(intervals))}
		for idx, iv := range intervals {
			cfg := sim.DefaultConfig("DRR2-TTL/S_K")
			cfg.HeterogeneityPct = 35
			cfg.OracleWeights = mode == "oracle"
			cfg.EstimatorInterval = iv
			mean, hw, err := runProb(cfg, o, metricLevel)
			if err != nil {
				return nil, fmt.Errorf("ext-estimator/%s iv=%v: %w", mode, iv, err)
			}
			s.Values[idx] = mean
			s.HalfWidths[idx] = hw
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// ExtForecast compares the two hidden-load estimator kinds on flash
// crowds (extension, DESIGN.md §14): a burst of new clients joins one
// domain through fresh name-server caches, and the x-axis sweeps the
// crowd size. The alarm-delay series report how long after the onset
// each estimator's demand view crosses the alarm line θ·C, in
// collection intervals: the reactive EWMA must wait for hit reports to
// roll in (one to two intervals), while the predictive NS-cache
// forecast moves on the decision burst itself and alarms within the
// probe's sampling grid. The balance series show the forecast buys its
// lead without costing balance — both kinds schedule through the same
// rolled weights.
func ExtForecast(o Options) (*Figure, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	sizes := []float64{250, 350, 450, 600}
	kinds := []string{core.EstimatorReactive, core.EstimatorPredictive}
	fig := &Figure{
		ID:     "ext-forecast",
		Title:  "Forecast-driven early alarm on flash crowds (Het. 20%)",
		XLabel: "Flash-crowd size (clients)",
		YLabel: "Alarm delay after onset (collection intervals) / Prob(MaxUtilization < 0.98)",
		XVals:  sizes,
	}
	fig.Series = make([]Series, 2*len(kinds))
	for k, kind := range kinds {
		fig.Series[k] = Series{Name: kind + " alarm delay", Values: make([]float64, len(sizes)), HalfWidths: make([]float64, len(sizes))}
		fig.Series[len(kinds)+k] = Series{Name: kind + " balance", Values: make([]float64, len(sizes)), HalfWidths: make([]float64, len(sizes))}
	}
	err := forEachLimit(len(kinds)*len(sizes), o.Workers, func(u int) error {
		k, i := u/len(sizes), u%len(sizes)
		cfg := sim.DefaultConfig("DRR2-TTL/S_K")
		cfg.OracleWeights = false
		cfg.Estimator = kinds[k]
		applyOptions(&cfg, o)
		// The crowd arrives well after the caches are warm, early enough
		// that short measurement runs still cover the whole episode.
		onset := cfg.Warmup + math.Min(1200, cfg.Duration/2)
		cfg.FlashCrowds = []sim.FlashEvent{{
			Time: onset, Domain: 0, Clients: int(sizes[i]), Resolvers: 40, Duration: 900,
		}}
		results, err := runReps(cfg, o)
		if err != nil {
			return fmt.Errorf("ext-forecast/%s clients=%v: %w", kinds[k], sizes[i], err)
		}
		delays := make([]float64, len(results))
		for r, res := range results {
			if res.EstimatorAlarmTime == 0 {
				return fmt.Errorf("ext-forecast/%s clients=%v rep %d: demand never crossed the alarm line",
					kinds[k], sizes[i], r)
			}
			delays[r] = (res.EstimatorAlarmTime - onset) / cfg.EstimatorInterval
		}
		div := stats.MeanCI(delays, 0.95)
		biv := sim.ProbMaxUnderCI(results, metricLevel, 0.95)
		fig.Series[k].Values[i] = div.Mean
		fig.Series[len(kinds)+k].Values[i] = biv.Mean
		if o.Reps > 1 {
			fig.Series[k].HalfWidths[i] = div.HalfWide
			fig.Series[len(kinds)+k].HalfWidths[i] = biv.HalfWide
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// ExtGeo sweeps the GeoDNS-style proximity preference (extension):
// with probability p the DNS answers with the nearest server on a
// synthetic ring geography instead of the adaptive discipline's
// choice. The figure shows the load/latency tradeoff: the balance
// metric and the mean client-server distance, normalized so both fit
// the probability axis.
func ExtGeo(o Options) (*Figure, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	prefs := []float64{0, 0.25, 0.5, 0.75, 1}
	fig := &Figure{
		ID:     "ext-geo",
		Title:  "Proximity preference tradeoff (Het. 35%, ring geography)",
		XLabel: "Nearest-server preference p",
		YLabel: "Prob(MaxUtil < 0.98) / normalized mean latency",
		XVals:  prefs,
	}
	balance := Series{Name: "Prob(MaxUtil<0.98)", Values: make([]float64, len(prefs)), HalfWidths: make([]float64, len(prefs))}
	latency := Series{Name: "mean latency / 200ms", Values: make([]float64, len(prefs))}
	for i, p := range prefs {
		cfg := sim.DefaultConfig("DRR2-TTL/S_K")
		cfg.HeterogeneityPct = 35
		cfg.GeoPreference = p
		if p == 0 {
			// Still build the matrix so latency is measured at p=0.
			cfg.GeoPreference = 1e-9
		}
		applyOptions(&cfg, o)
		results, err := sim.RunReplications(cfg, o.Reps)
		if err != nil {
			return nil, fmt.Errorf("ext-geo p=%v: %w", p, err)
		}
		iv := sim.ProbMaxUnderCI(results, metricLevel, 0.95)
		balance.Values[i] = iv.Mean
		if o.Reps > 1 {
			balance.HalfWidths[i] = iv.HalfWide
		}
		var lat float64
		for _, r := range results {
			lat += r.MeanLatencyMS
		}
		latency.Values[i] = lat / float64(len(results)) / 200
	}
	fig.Series = append(fig.Series, balance, latency)
	return fig, nil
}

// ExtReplication sweeps the inter-replica delivery lag of the
// multi-replica authoritative DNS (replication extension): two
// replicas split the namespace and gossip soft-state deltas, so each
// schedules on a view up to one gossip round plus the lag stale. The
// balance series shows what that staleness costs; the partitioned
// series repeats the sweep with a 30-second total link cut mid-run —
// availability is preserved by construction (replicas answer from
// local state), so the partition shows up only as extra staleness.
// The sweep runs the dynamic hidden-load estimator (not the oracle):
// each replica sees only its own servers' hit reports directly and
// learns the rest through gossip, so replication staleness feeds
// straight into the weight estimates the disciplines schedule by.
func ExtReplication(o Options) (*Figure, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	lags := []float64{0, 1, 5, 15, 60}
	fig := &Figure{
		ID:     "ext-replication",
		Title:  "Two-replica DNS: staleness vs balance (Het. 35%)",
		XLabel: "Inter-replica delivery lag (s)",
		YLabel: "Prob(MaxUtilization < 0.98)",
		XVals:  lags,
	}
	variants := []struct {
		label     string
		partition bool
	}{
		{label: "DRR2-TTL/S_K, 2 replicas", partition: false},
		{label: "DRR2-TTL/S_K, 2 replicas + 30s partition", partition: true},
	}
	for _, v := range variants {
		s := Series{Name: v.label, Values: make([]float64, len(lags)), HalfWidths: make([]float64, len(lags))}
		for i, lag := range lags {
			cfg := sim.DefaultConfig("DRR2-TTL/S_K")
			cfg.HeterogeneityPct = 35
			cfg.OracleWeights = false
			cfg.Replicas = 2
			cfg.ReplicationInterval = 8
			cfg.ReplicaLag = lag
			if v.partition {
				// Cut every link for 30 s once the caches are warm.
				cfg.Partitions = []sim.PartitionEvent{{Start: o.Warmup + 600, End: o.Warmup + 630}}
			}
			mean, hw, err := runProb(cfg, o, metricLevel)
			if err != nil {
				return nil, fmt.Errorf("ext-replication/%s lag=%v: %w", v.label, lag, err)
			}
			s.Values[i] = mean
			s.HalfWidths[i] = hw
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// ExtFailures measures the cost of a server crash under address
// caching (extension): the most capable server fails for the x-axis
// duration mid-run, and the y-axis reports the fraction of pages that
// hit it while TTL-pinned mappings were still naming it. New DNS
// decisions exclude the dead server immediately; only cached mappings
// keep losing pages until their TTL expires or the server returns.
// Comparing the adaptive DRR2-TTL/S_K against constant-TTL RR2
// (TTL/1) shows failure cost is governed by the residual TTL mass a
// discipline leaves in the resolvers' caches, not by how it balances
// load — the calibration that equalizes mean DNS request rates also
// roughly equalizes pinned loss.
func ExtFailures(o Options) (*Figure, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	durations := []float64{300, 600, 1200, 2400}
	fig := &Figure{
		ID:     "ext-failures",
		Title:  "Pinned-load loss under a server crash (Het. 35%)",
		XLabel: "Outage duration of the most capable server (s)",
		YLabel: "Lost pages / total pages",
		XVals:  durations,
	}
	policies := []struct{ name, label string }{
		{"DRR2-TTL/S_K", "DRR2-TTL/S_K (adaptive TTL)"},
		{"RR2", "RR2 (constant TTL)"},
	}
	for _, pol := range policies {
		s := Series{Name: pol.label, Values: make([]float64, len(durations)), HalfWidths: make([]float64, len(durations))}
		for i, d := range durations {
			cfg := sim.DefaultConfig(pol.name)
			cfg.HeterogeneityPct = 35
			applyOptions(&cfg, o)
			// Crash after the caches are fully populated.
			cfg.Faults = sim.Outage(0, o.Warmup+300, d)
			results, err := sim.RunReplications(cfg, o.Reps)
			if err != nil {
				return nil, fmt.Errorf("ext-failures/%s d=%v: %w", pol.name, d, err)
			}
			obs := make([]float64, len(results))
			for r, res := range results {
				if total := res.DeadServerHits + res.TotalHits; total > 0 {
					obs[r] = float64(res.DeadServerHits) / float64(total)
				}
			}
			iv := stats.MeanCI(obs, 0.95)
			s.Values[i] = iv.Mean
			if o.Reps > 1 {
				s.HalfWidths[i] = iv.HalfWide
			}
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// ExtBaselines compares the homogeneous-system baselines (DAL with
// step expiry, MRL with linear decay) and modern smooth weighted
// round robin (WRR, capacity-proportional but TTL-blind) against
// RR/RR2 across the heterogeneity range — none approaches the
// adaptive TTL schemes, because the bottleneck is the hidden load
// behind each cached mapping, not the instantaneous rotation.
func ExtBaselines(o Options) (*Figure, error) {
	return sweepFigure("ext-baselines", "Homogeneous-system baselines under heterogeneity",
		"Heterogeneity (max difference among server capacities %)",
		[]float64{20, 35, 50, 65},
		[]string{"DRR2-TTL/S_K", "WRR", "DAL", "MRL", "RR2", "RR"},
		o,
		func(cfg *sim.Config, x float64) { cfg.HeterogeneityPct = int(x) })
}

// ExtProbes compares crash-detection latency between active probing
// and passive missed-report detection (robustness extension). The
// instant-knowledge bound of ext-failures assumes the DNS learns of a
// crash at the moment it happens; in the live system it learns either
// from FailN consecutive failed health probes (internal/probe) or from
// K consecutive missed load reports (the LivenessMonitor). Reports
// only arrive once per estimator interval (paper: 60 s), so the
// passive detector's latency is locked to K×60 s regardless of how
// fast probes could run — the series shows active probing cutting
// detection latency by an order of magnitude at equal hysteresis
// depth, which is the operational argument for running both.
func ExtProbes(o Options) (*Figure, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	intervals := []float64{2, 5, 10, 30, 60}
	fig := &Figure{
		ID:     "ext-probes",
		Title:  "Crash detection latency: active probes vs missed reports",
		XLabel: "Probe interval (s)",
		YLabel: "Mean crash-to-exclusion delay (s)",
		XVals:  intervals,
	}
	const outageStart, outageLen = 300, 900
	detectors := []struct {
		label string
		det   func(x float64) sim.DetectionConfig
	}{
		{"active probes (fail-3)", func(x float64) sim.DetectionConfig {
			return sim.DetectionConfig{Kind: sim.DetectProbe, Interval: x, FailN: 3, RiseM: 2}
		}},
		{"missed reports (k=3, 60 s interval)", func(float64) sim.DetectionConfig {
			return sim.DetectionConfig{Kind: sim.DetectReport, Interval: 60, K: 3}
		}},
	}
	for _, dc := range detectors {
		s := Series{Name: dc.label, Values: make([]float64, len(intervals)), HalfWidths: make([]float64, len(intervals))}
		for i, x := range intervals {
			cfg := sim.DefaultConfig("DRR2-TTL/S_K")
			cfg.HeterogeneityPct = 35
			applyOptions(&cfg, o)
			cfg.Faults = sim.Outage(0, o.Warmup+outageStart, outageLen)
			det := dc.det(x)
			cfg.Detection = &det
			results, err := runReps(cfg, o)
			if err != nil {
				return nil, fmt.Errorf("ext-probes/%s interval=%v: %w", dc.label, x, err)
			}
			obs := make([]float64, len(results))
			for r, res := range results {
				obs[r] = res.MeanDetectionDelay
			}
			iv := stats.MeanCI(obs, 0.95)
			s.Values[i] = iv.Mean
			if o.Reps > 1 {
				s.HalfWidths[i] = iv.HalfWide
			}
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
