package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// plotMarkers assigns one character per series, cycling if a figure
// somehow exceeds them.
const plotMarkers = "*o+x#@%&~^"

// RenderPlot draws the figure as an ASCII chart: x spans the figure's
// x values, y spans [0,1] (all figures plot probabilities or
// cumulative frequencies). Each series is drawn with its own marker;
// overlapping points show the earlier series' marker.
func (f *Figure) RenderPlot(w io.Writer, width, height int) error {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	if len(f.XVals) == 0 || len(f.Series) == 0 {
		return fmt.Errorf("experiments: figure %s has nothing to plot", f.ID)
	}
	xLo, xHi := f.XVals[0], f.XVals[0]
	for _, x := range f.XVals {
		if x < xLo {
			xLo = x
		}
		if x > xHi {
			xHi = x
		}
	}
	if xHi == xLo {
		xHi = xLo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xLo) / (xHi - xLo) * float64(width-1)))
		return clampInt(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((1 - y) * float64(height-1)))
		return clampInt(r, 0, height-1)
	}
	for si := len(f.Series) - 1; si >= 0; si-- {
		s := f.Series[si]
		marker := plotMarkers[si%len(plotMarkers)]
		// Connect consecutive points with linear interpolation so the
		// chart reads as lines, then stamp the data points on top.
		for i := 1; i < len(s.Values) && i < len(f.XVals); i++ {
			c0, r0 := col(f.XVals[i-1]), row(s.Values[i-1])
			c1, r1 := col(f.XVals[i]), row(s.Values[i])
			steps := maxInt(absInt(c1-c0), absInt(r1-r0))
			for st := 0; st <= steps; st++ {
				t := 0.0
				if steps > 0 {
					t = float64(st) / float64(steps)
				}
				c := int(math.Round(float64(c0) + t*float64(c1-c0)))
				r := int(math.Round(float64(r0) + t*float64(r1-r0)))
				grid[clampInt(r, 0, height-1)][clampInt(c, 0, width-1)] = '.'
			}
		}
		for i, y := range s.Values {
			if i >= len(f.XVals) {
				break
			}
			grid[row(y)][col(f.XVals[i])] = marker
		}
	}

	if _, err := fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	for r, line := range grid {
		yVal := 1 - float64(r)/float64(height-1)
		label := "    "
		// Label the top, middle and bottom rows.
		if r == 0 || r == height-1 || r == (height-1)/2 {
			label = fmt.Sprintf("%.2f", yVal)
		}
		if _, err := fmt.Fprintf(w, "%4s |%s|\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "     +%s+\n", strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "      %-*s%*s\n", width/2, trimFloat(xLo), width-width/2, trimFloat(xHi)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "      x: %s, y: %s\n", f.XLabel, f.YLabel); err != nil {
		return err
	}
	for si, s := range f.Series {
		if _, err := fmt.Fprintf(w, "      %c %s\n", plotMarkers[si%len(plotMarkers)], s.Name); err != nil {
			return err
		}
	}
	return nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
