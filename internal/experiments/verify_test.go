package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestClaimsWellFormed(t *testing.T) {
	claims := Claims()
	if len(claims) != 12 {
		t.Fatalf("claims = %d, want 12", len(claims))
	}
	seen := make(map[string]bool)
	for _, c := range claims {
		if c.ID == "" || c.Statement == "" || c.Check == nil {
			t.Errorf("claim %+v incomplete", c.ID)
		}
		if seen[c.ID] {
			t.Errorf("duplicate claim ID %q", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestVerifyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs the full claim suite")
	}
	// Shortened runs: the claims must be robust enough to hold even on
	// 30 simulated minutes.
	o := Options{Duration: 1800, Warmup: 600, Reps: 1, Seed: 1, CurvePoints: 2}
	var buf bytes.Buffer
	failed, err := Verify(o, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if failed != 0 {
		t.Errorf("%d claims failed:\n%s", failed, out)
	}
	if !strings.Contains(out, "12/12 claims hold") {
		t.Errorf("summary missing:\n%s", out)
	}
	for _, c := range Claims() {
		if !strings.Contains(out, c.ID) {
			t.Errorf("report missing claim %s", c.ID)
		}
	}
}

func TestVerifyInvalidOptions(t *testing.T) {
	var buf bytes.Buffer
	bad := Options{}
	if _, err := Verify(bad, &buf); err == nil {
		t.Error("invalid options should error")
	}
}
