package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Render writes the figure as an aligned text table: one row per x
// value, one column per series — the same rows/series the paper plots.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# y: %s\n", f.YLabel); err != nil {
		return err
	}
	headers := make([]string, 0, len(f.Series)+1)
	headers = append(headers, f.XLabel)
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	widths := make([]int, len(headers))
	rows := make([][]string, 0, len(f.XVals)+1)
	rows = append(rows, headers)
	for i, x := range f.XVals {
		row := make([]string, 0, len(headers))
		row = append(row, trimFloat(x))
		for _, s := range f.Series {
			if i < len(s.Values) {
				row = append(row, fmt.Sprintf("%.4f", s.Values[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		cells := make([]string, len(row))
		for c, cell := range row {
			cells[c] = fmt.Sprintf("%-*s", widths[c], cell)
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(cells, "  "), " ")); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the figure as CSV with a header row.
func (f *Figure) RenderCSV(w io.Writer) error {
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, csvEscape(f.XLabel))
	for _, s := range f.Series {
		cols = append(cols, csvEscape(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, x := range f.XVals {
		row := make([]string, 0, len(cols))
		row = append(row, trimFloat(x))
		for _, s := range f.Series {
			if i < len(s.Values) {
				row = append(row, fmt.Sprintf("%.6f", s.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.4f", x)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
