package experiments

import (
	"fmt"
	"io"
	"math"

	"dnslb/internal/sim"
)

// The reproduction validator: every qualitative claim the paper makes
// about its results, expressed as an executable check. `dnslb-bench
// -exp verify` runs them all and reports PASS/FAIL per claim, so "does
// this reproduction still hold?" is one command, not a reading
// exercise against EXPERIMENTS.md.

// Claim is one verifiable statement from the paper's evaluation.
type Claim struct {
	ID        string
	Statement string
	// Check runs the simulations the claim needs and reports whether
	// it holds, with a measurement detail string either way.
	Check func(o Options) (ok bool, detail string, err error)
}

// verifyRun runs one simulation with the experiment options applied.
func verifyRun(o Options, mutate func(*sim.Config)) (*sim.Result, error) {
	cfg := sim.DefaultConfig("RR")
	mutate(&cfg)
	applyOptions(&cfg, o)
	return sim.Run(cfg)
}

// probFor returns Prob(MaxUtil < level) for a policy under config
// mutations.
func probFor(o Options, policy string, level float64, mutate func(*sim.Config)) (float64, error) {
	r, err := verifyRun(o, func(cfg *sim.Config) {
		cfg.Policy = policy
		if policy == "Ideal" {
			cfg.Workload.Uniform = true
		}
		if mutate != nil {
			mutate(cfg)
		}
	})
	if err != nil {
		return 0, err
	}
	return r.ProbMaxUnder(level), nil
}

// Claims returns the full validator suite in paper order.
func Claims() []Claim {
	return []Claim{
		{
			ID:        "C1-adaptive-beats-rr",
			Statement: "DRR2-TTL/S_K keeps every server under 90% far more often than RR (paper: 0.94 vs 0.1)",
			Check: func(o Options) (bool, string, error) {
				best, err := probFor(o, "DRR2-TTL/S_K", 0.9, nil)
				if err != nil {
					return false, "", err
				}
				rr, err := probFor(o, "RR", 0.9, nil)
				if err != nil {
					return false, "", err
				}
				return best-rr >= 0.5, fmt.Sprintf("DRR2-TTL/S_K %.3f vs RR %.3f", best, rr), nil
			},
		},
		{
			ID:        "C2-envelope",
			Statement: "DRR2-TTL/S_K lies close to the Ideal envelope (Figure 1)",
			Check: func(o Options) (bool, string, error) {
				best, err := probFor(o, "DRR2-TTL/S_K", 0.9, nil)
				if err != nil {
					return false, "", err
				}
				ideal, err := probFor(o, "Ideal", 0.9, nil)
				if err != nil {
					return false, "", err
				}
				return math.Abs(ideal-best) <= 0.12, fmt.Sprintf("Ideal %.3f vs DRR2-TTL/S_K %.3f", ideal, best), nil
			},
		},
		{
			ID:        "C3-server-only-insufficient",
			Statement: "server-capacity-only TTLs (TTL/S_1) barely improve on RR (paper: still < 0.15)",
			Check: func(o Options) (bool, string, error) {
				s1, err := probFor(o, "DRR2-TTL/S_1", 0.9, nil)
				if err != nil {
					return false, "", err
				}
				return s1 < 0.3, fmt.Sprintf("DRR2-TTL/S_1 %.3f", s1), nil
			},
		},
		{
			ID:        "C4-class-ordering",
			Statement: "finer domain classes help: PRR2 TTL/K ≥ TTL/2 ≥ TTL/1 (Figure 2, het 35%)",
			Check: func(o Options) (bool, string, error) {
				at35 := func(cfg *sim.Config) { cfg.HeterogeneityPct = 35 }
				k, err := probFor(o, "PRR2-TTL/K", 0.9, at35)
				if err != nil {
					return false, "", err
				}
				two, err := probFor(o, "PRR2-TTL/2", 0.9, at35)
				if err != nil {
					return false, "", err
				}
				one, err := probFor(o, "PRR2-TTL/1", 0.9, at35)
				if err != nil {
					return false, "", err
				}
				detail := fmt.Sprintf("K %.3f, 2 %.3f, 1 %.3f", k, two, one)
				return k >= two-0.02 && two >= one+0.1, detail, nil
			},
		},
		{
			ID:        "C5-heterogeneity-stability",
			Statement: "TTL/S_K stays effective even at 65% heterogeneity (Figure 3)",
			Check: func(o Options) (bool, string, error) {
				p, err := probFor(o, "DRR2-TTL/S_K", 0.98, func(cfg *sim.Config) { cfg.HeterogeneityPct = 65 })
				if err != nil {
					return false, "", err
				}
				return p >= 0.85, fmt.Sprintf("P(maxU<0.98) at het 65%% = %.3f", p), nil
			},
		},
		{
			ID:        "C6-dal-does-not-transfer",
			Statement: "DAL (homogeneous-system policy) stays far below the adaptive TTL schemes (Figure 3)",
			Check: func(o Options) (bool, string, error) {
				at35 := func(cfg *sim.Config) { cfg.HeterogeneityPct = 35 }
				dal, err := probFor(o, "DAL", 0.98, at35)
				if err != nil {
					return false, "", err
				}
				adaptive, err := probFor(o, "DRR2-TTL/S_K", 0.98, at35)
				if err != nil {
					return false, "", err
				}
				return dal <= adaptive-0.3, fmt.Sprintf("DAL %.3f vs DRR2-TTL/S_K %.3f", dal, adaptive), nil
			},
		},
		{
			ID:        "C7-ttl2-mintl-insensitive",
			Statement: "PRR2-TTL/2 is insensitive to NS minimum TTLs up to ~60 s (Figures 4-5: its TTLs are ≥ 80 s)",
			Check: func(o Options) (bool, string, error) {
				free, err := probFor(o, "PRR2-TTL/2", 0.98, nil)
				if err != nil {
					return false, "", err
				}
				clamped, err := probFor(o, "PRR2-TTL/2", 0.98, func(cfg *sim.Config) { cfg.MinNSTTL = 60 })
				if err != nil {
					return false, "", err
				}
				return math.Abs(free-clamped) <= 0.08, fmt.Sprintf("min TTL 0 → %.3f, 60 s → %.3f", free, clamped), nil
			},
		},
		{
			ID:        "C8-mintl-crossover",
			Statement: "at 50% heterogeneity and high minimum TTL, domain-only schemes overtake DRR2-TTL/S_K (Figure 5)",
			Check: func(o Options) (bool, string, error) {
				hi := func(cfg *sim.Config) {
					cfg.HeterogeneityPct = 50
					cfg.MinNSTTL = 120
				}
				sk, err := probFor(o, "DRR2-TTL/S_K", 0.98, hi)
				if err != nil {
					return false, "", err
				}
				k, err := probFor(o, "PRR2-TTL/K", 0.98, hi)
				if err != nil {
					return false, "", err
				}
				return k >= sk-0.02, fmt.Sprintf("PRR2-TTL/K %.3f vs DRR2-TTL/S_K %.3f", k, sk), nil
			},
		},
		{
			ID:        "C9-error-robustness",
			Statement: "under 30% estimation error at 50% heterogeneity, K-class schemes stay far above 2-class schemes (Figure 7)",
			Check: func(o Options) (bool, string, error) {
				withErr := func(cfg *sim.Config) {
					cfg.HeterogeneityPct = 50
					cfg.Workload.PerturbationPct = 30
				}
				k, err := probFor(o, "DRR2-TTL/S_K", 0.98, withErr)
				if err != nil {
					return false, "", err
				}
				two, err := probFor(o, "DRR2-TTL/S_2", 0.98, withErr)
				if err != nil {
					return false, "", err
				}
				return k >= two+0.2, fmt.Sprintf("TTL/S_K %.3f vs TTL/S_2 %.3f", k, two), nil
			},
		},
		{
			ID:        "C10-limited-control",
			Statement: "the DNS directly controls only a small fraction of the requests (paper: often below 4%)",
			Check: func(o Options) (bool, string, error) {
				r, err := verifyRun(o, func(cfg *sim.Config) { cfg.Policy = "DRR2-TTL/S_K" })
				if err != nil {
					return false, "", err
				}
				f := r.ControlledFraction()
				return f > 0 && f < 0.04, fmt.Sprintf("controlled fraction %.4f", f), nil
			},
		},
		{
			ID:        "C11-operating-point",
			Statement: "the modelled system runs at the paper's 2/3 average utilization",
			Check: func(o Options) (bool, string, error) {
				r, err := verifyRun(o, func(cfg *sim.Config) { cfg.Policy = "RR" })
				if err != nil {
					return false, "", err
				}
				var mean float64
				for _, u := range r.MeanServerUtil {
					mean += u
				}
				mean /= float64(len(r.MeanServerUtil))
				return math.Abs(mean-2.0/3) <= 0.05, fmt.Sprintf("mean utilization %.3f", mean), nil
			},
		},
		{
			ID:        "C12-calibrated-address-rate",
			Statement: "adaptive TTL policies are calibrated to the constant-TTL address-request rate (paper's fairness condition)",
			Check: func(o Options) (bool, string, error) {
				base, err := verifyRun(o, func(cfg *sim.Config) { cfg.Policy = "RR" })
				if err != nil {
					return false, "", err
				}
				adaptive, err := verifyRun(o, func(cfg *sim.Config) { cfg.Policy = "DRR2-TTL/S_K" })
				if err != nil {
					return false, "", err
				}
				ratio := adaptive.AddressRate() / base.AddressRate()
				return ratio >= 0.7 && ratio <= 1.4, fmt.Sprintf("address-rate ratio %.3f", ratio), nil
			},
		},
	}
}

// Verify runs every claim and writes a PASS/FAIL report. It returns
// the number of failed claims.
func Verify(o Options, w io.Writer) (int, error) {
	if err := o.validate(); err != nil {
		return 0, err
	}
	failed := 0
	for _, c := range Claims() {
		ok, detail, err := c.Check(o)
		if err != nil {
			return failed, fmt.Errorf("%s: %w", c.ID, err)
		}
		status := "PASS"
		if !ok {
			status = "FAIL"
			failed++
		}
		if _, err := fmt.Fprintf(w, "%s  %-28s %s\n      measured: %s\n", status, c.ID, c.Statement, detail); err != nil {
			return failed, err
		}
	}
	if _, err := fmt.Fprintf(w, "\n%d/%d claims hold\n", len(Claims())-failed, len(Claims())); err != nil {
		return failed, err
	}
	return failed, nil
}
