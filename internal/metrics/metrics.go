// Package metrics is a dependency-free metrics layer for the live
// serving path: counters, gauges, and fixed-bucket histograms backed by
// atomics, collected in a Registry that renders the Prometheus text
// exposition format (version 0.0.4).
//
// The update paths are allocation-free and lock-free. Counters and
// histogram sums are sharded across cache-line-padded slots (the same
// pattern as core.Policy's TTL accumulator) so parallel writers on the
// query hot path do not bounce a single cache line between cores; hot
// callers that already know a cheap shard hint (a worker index, a
// source-address hash) pass it through the *Hint variants, everything
// else uses the plain methods on shard 0.
//
// Reads (Value, Registry.WritePrometheus) sum the shards; a read
// concurrent with writers may miss in-flight updates but every total is
// monotone and exact once writers quiesce — the same contract as the
// scheduler's decision counters.
package metrics

import (
	"math"
	"sync/atomic"
)

// shards is the number of independently updated slots per sharded
// metric. Eight 64-byte-padded slots cover the worker counts the serve
// path runs with while keeping per-metric footprint small.
const shards = 8

// pad64 is one atomic 64-bit slot padded to a full cache line so
// adjacent shards never share a line.
type pad64 struct {
	v atomic.Uint64
	_ [56]byte
}

// addFloatBits atomically accumulates v into a float64 stored as bits.
func addFloatBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Counter is a monotonically increasing counter.
type Counter struct {
	shards [shards]pad64
}

// Add increments the counter by delta on shard 0.
func (c *Counter) Add(delta uint64) { c.shards[0].v.Add(delta) }

// Inc increments the counter by one on shard 0.
func (c *Counter) Inc() { c.Add(1) }

// AddHint increments the counter by delta on the shard selected by
// hint — callers on parallel hot paths pass a per-worker or per-source
// hint so concurrent increments land on distinct cache lines.
func (c *Counter) AddHint(hint uint32, delta uint64) {
	c.shards[hint%shards].v.Add(delta)
}

// IncHint increments the counter by one on the shard selected by hint.
func (c *Counter) IncHint(hint uint32) { c.AddHint(hint, 1) }

// Value returns the counter total across shards.
func (c *Counter) Value() uint64 {
	var t uint64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates delta (which may be negative).
func (g *Gauge) Add(delta float64) { addFloatBits(&g.bits, delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observations are counted into
// the first bucket whose upper bound is >= the value, with an implicit
// +Inf bucket, plus a sharded running sum. Bucket counters are plain
// atomics (distinct buckets are distinct words); the sum is sharded
// because every observation touches it.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf excluded
	buckets []atomic.Uint64
	sum     [shards]pad64 // float64 bits per shard
}

// newHistogram builds a histogram over the given strictly increasing
// upper bounds (callers validate via the Registry).
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds:  b,
		buckets: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one observation on shard 0.
func (h *Histogram) Observe(v float64) { h.ObserveHint(0, v) }

// ObserveHint records one observation, accumulating the sum on the
// shard selected by hint. The bucket scan is linear: exposition-grade
// histograms have ~10 buckets, where the scan beats binary search and
// branch-predicts perfectly for concentrated distributions.
func (h *Histogram) ObserveHint(hint uint32, v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	addFloatBits(&h.sum[hint%shards].v, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var t uint64
	for i := range h.buckets {
		t += h.buckets[i].Load()
	}
	return t
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	var t float64
	for i := range h.sum {
		t += math.Float64frombits(h.sum[i].v.Load())
	}
	return t
}

// Buckets returns the per-bucket upper bounds and cumulative counts,
// Prometheus-style: counts[i] is the number of observations <=
// bounds[i], with the final element the +Inf bucket (== Count up to
// in-flight updates).
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.buckets))
	var run uint64
	for i := range h.buckets {
		run += h.buckets[i].Load()
		cumulative[i] = run
	}
	return bounds, cumulative
}
