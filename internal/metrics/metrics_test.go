package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrentExact hammers one counter from many goroutines
// (mixing plain and hinted adds) and requires the total to be exact —
// the same counter-exactness contract the scheduler's decision counters
// keep.
func TestCounterConcurrentExact(t *testing.T) {
	const (
		goroutines = 16
		perG       = 10000
	)
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if g%2 == 0 {
					c.IncHint(uint32(g))
				} else {
					c.Inc()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

// TestHistogramConcurrentExact checks count, sum, and bucket placement
// under concurrent observers.
func TestHistogramConcurrentExact(t *testing.T) {
	const (
		goroutines = 8
		perG       = 5000
	)
	h := newHistogram([]float64{1, 10, 100})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.ObserveHint(uint32(g), float64(i%4)*5) // 0, 5, 10, 15
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("count = %d, want %d", got, goroutines*perG)
	}
	// Per goroutine: 1250 each of 0, 5, 10, 15 → sum 30*1250.
	wantSum := float64(goroutines) * 30 * float64(perG) / 4
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("buckets = %v %v", bounds, cum)
	}
	// le=1: the 0 values; le=10: 0,5,10; le=100 and +Inf: everything.
	quarter := uint64(goroutines * perG / 4)
	if cum[0] != quarter {
		t.Errorf("le=1 bucket = %d, want %d", cum[0], quarter)
	}
	if cum[1] != 3*quarter {
		t.Errorf("le=10 bucket = %d, want %d", cum[1], 3*quarter)
	}
	if cum[2] != 4*quarter || cum[3] != 4*quarter {
		t.Errorf("upper buckets = %d,%d, want %d", cum[2], cum[3], 4*quarter)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

// TestWritePrometheusGolden pins the full exposition output for a
// registry exercising every metric kind, label rendering, histogram
// buckets, and name ordering.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("dnslb_test_queries_total", "Queries received.", nil)
	c.Add(42)
	perServer := r.NewCounter("dnslb_test_decisions_total", "Decisions per server.", Labels{"server", "1"})
	perServer.Add(7)
	r.NewCounter("dnslb_test_decisions_total", "Decisions per server.", Labels{"server", "0"}).Add(3)
	g := r.NewGauge("dnslb_test_utilization", "Busy fraction.", nil)
	g.Set(0.625)
	r.NewGaugeFunc("dnslb_test_live_servers", "Servers not down.", nil, func() float64 { return 6 })
	r.NewCounterFunc("dnslb_test_answered_total", "Answered queries.", nil, func() uint64 { return 41 })
	h := r.NewHistogram("dnslb_test_ttl_seconds", "Returned TTLs.", nil, []float64{30, 240})
	h.Observe(15)
	h.Observe(60)
	h.Observe(500)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dnslb_test_answered_total Answered queries.
# TYPE dnslb_test_answered_total counter
dnslb_test_answered_total 41
# HELP dnslb_test_decisions_total Decisions per server.
# TYPE dnslb_test_decisions_total counter
dnslb_test_decisions_total{server="0"} 3
dnslb_test_decisions_total{server="1"} 7
# HELP dnslb_test_live_servers Servers not down.
# TYPE dnslb_test_live_servers gauge
dnslb_test_live_servers 6
# HELP dnslb_test_queries_total Queries received.
# TYPE dnslb_test_queries_total counter
dnslb_test_queries_total 42
# HELP dnslb_test_ttl_seconds Returned TTLs.
# TYPE dnslb_test_ttl_seconds histogram
dnslb_test_ttl_seconds_bucket{le="30"} 1
dnslb_test_ttl_seconds_bucket{le="240"} 2
dnslb_test_ttl_seconds_bucket{le="+Inf"} 3
dnslb_test_ttl_seconds_sum 575
dnslb_test_ttl_seconds_count 3
# HELP dnslb_test_utilization Busy fraction.
# TYPE dnslb_test_utilization gauge
dnslb_test_utilization 0.625
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
	if n, err := CheckText(strings.NewReader(b.String())); err != nil || n == 0 {
		t.Errorf("CheckText: samples=%d err=%v", n, err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "", Labels{"path", `a"b\c` + "\n"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `x_total{path="a\"b\\c\n"} 1` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped output %q does not contain %q", b.String(), want)
	}
	if _, err := CheckText(strings.NewReader(b.String())); err != nil {
		t.Errorf("CheckText on escaped output: %v", err)
	}
}

func TestRegistrationPanics(t *testing.T) {
	for name, fn := range map[string]func(*Registry){
		"bad metric name": func(r *Registry) { r.NewCounter("9bad", "", nil) },
		"bad label name":  func(r *Registry) { r.NewCounter("ok_total", "", Labels{"9bad", "v"}) },
		"odd labels":      func(r *Registry) { r.NewCounter("ok_total", "", Labels{"just-one"}) },
		"type clash": func(r *Registry) {
			r.NewCounter("clash", "", nil)
			r.NewGauge("clash", "", nil)
		},
		"duplicate series": func(r *Registry) {
			r.NewCounter("dup_total", "", Labels{"a", "1"})
			r.NewCounter("dup_total", "", Labels{"a", "1"})
		},
		"empty histogram bounds": func(r *Registry) { r.NewHistogram("h", "", nil, nil) },
		"unsorted bounds":        func(r *Registry) { r.NewHistogram("h", "", nil, []float64{2, 1}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("registration did not panic")
				}
			}()
			fn(NewRegistry())
		})
	}
}

func TestCheckTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no value\n",
		`metric{unterminated="x" 1` + "\n",
		"metric 1 2 3\n",
		"# BOGUS comment here\n",
		`metric{k=unquoted} 1` + "\n",
		"9leading_digit 1\n",
	} {
		if _, err := CheckText(strings.NewReader(bad)); err == nil {
			t.Errorf("CheckText accepted %q", bad)
		}
	}
	if n, err := CheckText(strings.NewReader("m{a=\"1\",b=\"x,y\"} 5 1700000000\n")); err != nil || n != 1 {
		t.Errorf("valid line rejected: samples=%d err=%v", n, err)
	}
}
