package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CheckText validates a Prometheus text-exposition stream line by line:
// comment structure, metric/label-name syntax, label-value quoting, and
// sample values. It returns the number of sample lines checked, or an
// error naming the first offending line. Tests use it to assert that
// /metrics output is well-formed without pinning exact counter values.
func CheckText(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return samples, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := checkSample(line); err != nil {
			return samples, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	return samples, nil
}

func checkComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return fmt.Errorf("malformed comment %q", line)
	}
	if !validName(fields[2]) {
		return fmt.Errorf("comment names invalid metric %q", fields[2])
	}
	if fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Errorf("TYPE comment %q missing type", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

func checkSample(line string) error {
	rest := line
	// Metric name runs to '{' or ' '.
	end := strings.IndexAny(rest, "{ ")
	if end <= 0 {
		return fmt.Errorf("no metric name in %q", line)
	}
	if !validName(rest[:end]) {
		return fmt.Errorf("invalid metric name %q", rest[:end])
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := strings.LastIndexByte(rest, '}')
		if close < 0 {
			return fmt.Errorf("unterminated label set in %q", line)
		}
		if err := checkLabels(rest[1:close]); err != nil {
			return fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[close+1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	// Value, optionally followed by a timestamp.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("want value [timestamp], got %q", rest)
	}
	if !validSampleValue(fields[0]) {
		return fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return nil
}

func validSampleValue(s string) bool {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return true
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

func checkLabels(body string) error {
	if body == "" {
		return nil
	}
	for _, pair := range splitLabelPairs(body) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || !validName(k) || strings.Contains(k, ":") {
			return fmt.Errorf("bad label pair %q", pair)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("unquoted label value %q", v)
		}
	}
	return nil
}

// splitLabelPairs splits k="v",k2="v2" on commas outside quotes.
func splitLabelPairs(body string) []string {
	var (
		pairs   []string
		start   int
		inQuote bool
	)
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			if inQuote {
				i++ // skip escaped char
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				pairs = append(pairs, body[start:i])
				start = i + 1
			}
		}
	}
	return append(pairs, body[start:])
}
