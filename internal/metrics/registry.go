package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels is an ordered key/value list attached to one series, e.g.
// metrics.Labels{"server", "0", "policy", "RR"}. Keys must be valid
// label names; values are escaped at registration time.
type Labels []string

// render formats the label set as {k="v",...} (empty string for no
// labels), validating keys. Values have \, " and newline escaped per
// the exposition format.
func (l Labels) render() (string, error) {
	if len(l) == 0 {
		return "", nil
	}
	if len(l)%2 != 0 {
		return "", fmt.Errorf("metrics: odd label list %q", []string(l))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(l); i += 2 {
		if !validName(l[i]) || strings.Contains(l[i], ":") {
			return "", fmt.Errorf("metrics: invalid label name %q", l[i])
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l[i])
		b.WriteString(`="`)
		v := l[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String(), nil
}

// validName reports whether s is a legal metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// series is one labelled instance of a metric family.
type series struct {
	labels string // rendered {k="v",...} or ""
	// exactly one of the following is set
	counter     *Counter
	gauge       *Gauge
	histogram   *Histogram
	counterFunc func() uint64
	gaugeFunc   func() float64
}

// family groups all series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	series []*series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration takes a lock; metric updates
// never do (they go straight to the returned handles).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted family names
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register validates and inserts one series, creating its family as
// needed. Registration errors are programming errors (bad name, type
// clash, duplicate series), so it panics — the failure is immediate and
// deterministic at wiring time, never on the serve path.
func (r *Registry) register(name, help, typ string, s *series, labels Labels) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	rendered, err := labels.render()
	if err != nil {
		panic(err.Error())
	}
	s.labels = rendered
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		i := sort.SearchStrings(r.names, name)
		r.names = append(r.names, "")
		copy(r.names[i+1:], r.names[i:])
		r.names[i] = name
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, typ))
	}
	for _, existing := range f.series {
		if existing.labels == rendered {
			panic(fmt.Sprintf("metrics: duplicate series %s%s", name, rendered))
		}
	}
	f.series = append(f.series, s)
	sort.Slice(f.series, func(a, b int) bool { return f.series[a].labels < f.series[b].labels })
}

// NewCounter registers and returns a counter series.
func (r *Registry) NewCounter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", &series{counter: c}, labels)
	return c
}

// NewCounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for totals the hot path already counts
// elsewhere (sharded server stats, policy decision counters), adding
// zero new work per event.
func (r *Registry) NewCounterFunc(name, help string, labels Labels, fn func() uint64) {
	r.register(name, help, "counter", &series{counterFunc: fn}, labels)
}

// NewGauge registers and returns a gauge series.
func (r *Registry) NewGauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", &series{gauge: g}, labels)
	return g
}

// NewGaugeFunc registers a gauge evaluated from fn at exposition time.
func (r *Registry) NewGaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "gauge", &series{gaugeFunc: fn}, labels)
}

// NewHistogram registers and returns a histogram series over the given
// strictly increasing bucket upper bounds (the +Inf bucket is
// implicit).
func (r *Registry) NewHistogram(name, help string, labels Labels, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %s needs at least one bucket bound", name))
	}
	for i, b := range bounds {
		if math.IsNaN(b) || (i > 0 && b <= bounds[i-1]) {
			panic(fmt.Sprintf("metrics: histogram %s bounds not strictly increasing: %v", name, bounds))
		}
	}
	h := newHistogram(bounds)
	r.register(name, help, "histogram", &series{histogram: h}, labels)
	return h
}

// TextContentType is the Content-Type of the text exposition format.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in the text exposition format,
// families sorted by name, series by label string. Func metrics are
// evaluated as they are written.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			writeSeries(&b, f.name, s)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func writeSeries(b *strings.Builder, name string, s *series) {
	switch {
	case s.counter != nil:
		fmt.Fprintf(b, "%s%s %d\n", name, s.labels, s.counter.Value())
	case s.counterFunc != nil:
		fmt.Fprintf(b, "%s%s %d\n", name, s.labels, s.counterFunc())
	case s.gauge != nil:
		fmt.Fprintf(b, "%s%s %s\n", name, s.labels, formatFloat(s.gauge.Value()))
	case s.gaugeFunc != nil:
		fmt.Fprintf(b, "%s%s %s\n", name, s.labels, formatFloat(s.gaugeFunc()))
	case s.histogram != nil:
		bounds, cum := s.histogram.Buckets()
		for i, bound := range bounds {
			fmt.Fprintf(b, "%s_bucket%s %d\n", name,
				withLabel(s.labels, "le", formatFloat(bound)), cum[i])
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			withLabel(s.labels, "le", "+Inf"), cum[len(cum)-1])
		fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatFloat(s.histogram.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, cum[len(cum)-1])
	}
}

// withLabel appends one k="v" pair to an already-rendered label string.
func withLabel(rendered, key, value string) string {
	pair := key + `="` + value + `"`
	if rendered == "" {
		return "{" + pair + "}"
	}
	return rendered[:len(rendered)-1] + "," + pair + "}"
}

// formatFloat renders a float the way Prometheus clients do: integral
// values without exponent or trailing zeros, 'g' otherwise.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in the text
// exposition format — mount it on /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WritePrometheus(w)
	})
}
