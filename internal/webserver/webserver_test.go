package webserver

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5); err == nil {
		t.Error("zero capacity should error")
	}
	if _, err := New(-1, 5); err == nil {
		t.Error("negative capacity should error")
	}
	if _, err := New(100, 0); err == nil {
		t.Error("zero domains should error")
	}
}

func TestUtilizationIdle(t *testing.T) {
	s, err := New(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CloseWindow(8); got != 0 {
		t.Errorf("idle utilization = %v, want 0", got)
	}
}

func TestUtilizationPartialWindow(t *testing.T) {
	s, err := New(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 200 hits at capacity 100 → 2 s of work in an 8 s window.
	s.Arrive(0, 0, 200)
	if got := s.CloseWindow(8); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("utilization = %v, want 0.25", got)
	}
	// Next window is idle again.
	if got := s.CloseWindow(16); got != 0 {
		t.Errorf("second window utilization = %v, want 0", got)
	}
}

func TestUtilizationSaturated(t *testing.T) {
	s, err := New(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 4000 hits → 40 s of work: the first 8 s window is fully busy.
	s.Arrive(0, 0, 4000)
	for w := 1; w <= 5; w++ {
		if got := s.CloseWindow(float64(8 * w)); math.Abs(got-1) > 1e-12 {
			t.Errorf("window %d utilization = %v, want 1 while backlog drains", w, got)
		}
	}
	// Backlog exhausted at t=40; window [40,48] is idle.
	if got := s.CloseWindow(48); got != 0 {
		t.Errorf("post-drain utilization = %v, want 0", got)
	}
}

func TestBusyPeriodSpansWindows(t *testing.T) {
	s, err := New(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Work arrives at t=6: 400 hits → busy [6,10].
	s.Arrive(6, 0, 400)
	if got := s.CloseWindow(8); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("window 1 utilization = %v, want 2/8", got)
	}
	if got := s.CloseWindow(16); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("window 2 utilization = %v, want 2/8", got)
	}
}

func TestBacklogAndFIFOAccumulation(t *testing.T) {
	s, err := New(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Arrive(0, 0, 100) // 2 s
	s.Arrive(0, 0, 100) // +2 s
	if got := s.Backlog(0); math.Abs(got-4) > 1e-12 {
		t.Errorf("backlog = %v, want 4 s", got)
	}
	if got := s.Backlog(3); math.Abs(got-1) > 1e-12 {
		t.Errorf("backlog at t=3 = %v, want 1 s", got)
	}
	if got := s.Backlog(10); got != 0 {
		t.Errorf("backlog after drain = %v, want 0", got)
	}
}

func TestCounters(t *testing.T) {
	s, err := New(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Arrive(0, 0, 10)
	s.Arrive(1, 2, 5)
	s.Arrive(2, 1, 7)
	s.Arrive(2, -1, 3) // unknown domain still counted in totals
	s.Arrive(2, 0, 0)  // zero hits ignored
	if s.TotalHits() != 25 {
		t.Errorf("TotalHits = %d, want 25", s.TotalHits())
	}
	if s.TotalPages() != 4 {
		t.Errorf("TotalPages = %d, want 4", s.TotalPages())
	}
	hits := s.TakeDomainHits()
	if hits[0] != 10 || hits[1] != 7 || hits[2] != 5 {
		t.Errorf("domain hits = %v, want [10 7 5]", hits)
	}
	// Take resets.
	hits = s.TakeDomainHits()
	for j, h := range hits {
		if h != 0 {
			t.Errorf("domain %d hits = %v after take, want 0", j, h)
		}
	}
}

func TestMeanUtilization(t *testing.T) {
	s, err := New(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Arrive(0, 0, 500) // 5 s of work
	if got := s.MeanUtilization(10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MeanUtilization = %v, want 0.5", got)
	}
	if got := s.MeanUtilization(0); got != 0 {
		t.Errorf("MeanUtilization at t=0 = %v, want 0", got)
	}
	if got := s.Capacity(); got != 100 {
		t.Errorf("Capacity = %v", got)
	}
}

func TestUtilizationNeverExceedsOneProperty(t *testing.T) {
	f := func(arrivals []uint16) bool {
		s, err := New(80, 1)
		if err != nil {
			return false
		}
		now := 0.0
		window := 0.0
		for _, a := range arrivals {
			now += float64(a%50) / 10
			s.Arrive(now, 0, int(a%300)+1)
			for window+8 <= now {
				window += 8
				u := s.CloseWindow(window)
				if u < 0 || u > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBusyTimeConservationProperty(t *testing.T) {
	// Total credited busy time equals min(total work, elapsed busy
	// opportunity): with all work arriving at t=0 it is exactly
	// min(work, horizon).
	f := func(hitsRaw uint16) bool {
		hits := int(hitsRaw%5000) + 1
		s, err := New(100, 1)
		if err != nil {
			return false
		}
		s.Arrive(0, 0, hits)
		const windows = 8
		var total float64
		for w := 1; w <= windows; w++ {
			total += s.CloseWindow(float64(8*w)) * 8
		}
		work := float64(hits) / 100
		want := math.Min(work, float64(8*windows))
		return math.Abs(total-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResponseTimes(t *testing.T) {
	s, err := New(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanResponseTime() != 0 || s.MaxResponseTime() != 0 {
		t.Error("response times should start at zero")
	}
	// Page 1 at t=0: 100 hits = 1 s service, empty queue → response 1 s.
	s.Arrive(0, 0, 100)
	// Page 2 at t=0: waits 1 s, serves 1 s → response 2 s.
	s.Arrive(0, 0, 100)
	if got := s.MeanResponseTime(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("MeanResponseTime = %v, want 1.5", got)
	}
	if got := s.MaxResponseTime(); math.Abs(got-2) > 1e-12 {
		t.Errorf("MaxResponseTime = %v, want 2", got)
	}
	// A page after the queue drains sees only its own service time.
	s.Arrive(10, 0, 50)
	if got := s.MaxResponseTime(); math.Abs(got-2) > 1e-12 {
		t.Errorf("MaxResponseTime = %v, want unchanged 2", got)
	}
}
