// Package webserver models one Web server of the distributed site: a
// work-conserving FIFO queue whose capacity is expressed in hits per
// second, with per-window busy-time utilization (the quantity each
// server periodically reports to the DNS alarm mechanism) and
// per-domain hit accounting for the hidden-load estimator.
//
// The model exploits that all hits of a page burst go back-to-back to
// the same server: a page is a single job of service time hits/C, so
// no completion events are needed. Busy time is credited lazily from
// the "busy until" horizon, which is exact for a FIFO queue.
package webserver

import (
	"errors"
	"fmt"
)

// Server is a single Web server. It is driven by the simulator's
// virtual clock: all methods take the current time, which must be
// non-decreasing across calls.
type Server struct {
	capacity float64 // hits per second

	busyUntil float64 // virtual time when the current backlog drains
	credited  float64 // busy seconds credited so far
	creditTo  float64 // wall time up to which busy time was evaluated

	windowStart   float64
	windowCredits float64 // credited busy seconds at window start

	totalHits  uint64
	totalPages uint64
	domainHits []float64

	sumResponse float64 // Σ (queue wait + service) over all pages
	maxResponse float64
}

// New creates a server with the given capacity in hits per second,
// tracking hit counts for the given number of domains.
func New(capacity float64, domains int) (*Server, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("webserver: capacity %v must be positive", capacity)
	}
	if domains <= 0 {
		return nil, errors.New("webserver: need at least one domain")
	}
	return &Server{capacity: capacity, domainHits: make([]float64, domains)}, nil
}

// Capacity returns the server's capacity in hits per second.
func (s *Server) Capacity() float64 { return s.capacity }

// Arrive enqueues a page of the given number of hits from a domain at
// virtual time now. Service time is hits/capacity seconds, appended to
// the FIFO backlog.
func (s *Server) Arrive(now float64, domain, hits int) {
	if hits <= 0 {
		return
	}
	s.advance(now)
	service := float64(hits) / s.capacity
	if s.busyUntil < now {
		s.busyUntil = now
	}
	s.busyUntil += service
	// FIFO response time: the page completes when the backlog (which
	// now includes it) drains.
	response := s.busyUntil - now
	s.sumResponse += response
	if response > s.maxResponse {
		s.maxResponse = response
	}
	s.totalHits += uint64(hits)
	s.totalPages++
	if domain >= 0 && domain < len(s.domainHits) {
		s.domainHits[domain] += float64(hits)
	}
}

// advance credits busy seconds up to wall time now.
func (s *Server) advance(now float64) {
	if now <= s.creditTo {
		return
	}
	busyEnd := s.busyUntil
	if busyEnd > now {
		busyEnd = now
	}
	if busyEnd > s.creditTo {
		s.credited += busyEnd - s.creditTo
	}
	s.creditTo = now
}

// CloseWindow ends the utilization window that started at the previous
// CloseWindow (or at time zero) and returns the busy-time fraction of
// that window, the paper's server utilization. Utilization is in
// [0, 1]: a saturated server reports 1 while its backlog grows.
func (s *Server) CloseWindow(now float64) float64 {
	s.advance(now)
	length := now - s.windowStart
	if length <= 0 {
		return 0
	}
	util := (s.credited - s.windowCredits) / length
	s.windowStart = now
	s.windowCredits = s.credited
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return util
}

// Backlog returns the outstanding work in seconds at time now: how
// long the server would need, with no further arrivals, to drain.
func (s *Server) Backlog(now float64) float64 {
	if s.busyUntil <= now {
		return 0
	}
	return s.busyUntil - now
}

// BusySeconds returns the cumulative busy time up to the latest
// arrival/window event.
func (s *Server) BusySeconds() float64 { return s.credited }

// MeanUtilization returns cumulative busy time divided by elapsed
// virtual time at now.
func (s *Server) MeanUtilization(now float64) float64 {
	s.advance(now)
	if now <= 0 {
		return 0
	}
	return s.credited / now
}

// TotalHits returns the number of hits served (including queued).
func (s *Server) TotalHits() uint64 { return s.totalHits }

// TotalPages returns the number of page bursts received.
func (s *Server) TotalPages() uint64 { return s.totalPages }

// MeanResponseTime returns the average page response time in seconds
// (queue wait plus service) over all pages received so far, or 0 when
// no page has arrived.
func (s *Server) MeanResponseTime() float64 {
	if s.totalPages == 0 {
		return 0
	}
	return s.sumResponse / float64(s.totalPages)
}

// MaxResponseTime returns the largest page response time observed.
func (s *Server) MaxResponseTime() float64 { return s.maxResponse }

// TakeDomainHits returns the per-domain hit counts accumulated since
// the previous call and resets them — the server-side half of the
// paper's "servers keep track of the number of incoming requests from
// each domain and the DNS periodically collects the information".
func (s *Server) TakeDomainHits() []float64 {
	out := make([]float64, len(s.domainHits))
	copy(out, s.domainHits)
	for j := range s.domainHits {
		s.domainHits[j] = 0
	}
	return out
}
