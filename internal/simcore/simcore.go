// Package simcore provides a deterministic discrete-event simulation
// engine: a future-event list ordered by virtual time, a simulation
// clock, and reproducible per-component random number streams.
//
// The engine replaces the proprietary CSIM package used by the paper.
// All model logic (sessions, caches, queues) is built on top of the
// three primitives exposed here: Now, Schedule, and Run.
package simcore

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback in the future-event list. The zero
// value is not useful; events are created by Simulator.Schedule and
// Simulator.ScheduleAt.
type Event struct {
	time      float64
	seq       uint64
	index     int // position in the heap, -1 when popped
	cancelled bool
	fn        func()
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Cancel marks the event so that it will not fire. Cancelling an event
// that already fired or was already cancelled is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	// Ties break by schedule order so runs are fully deterministic.
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		panic(fmt.Sprintf("simcore: pushed non-event %T", x))
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Simulator owns the virtual clock and the future-event list.
// It is not safe for concurrent use; a simulation is a single-threaded
// sequential program over virtual time.
type Simulator struct {
	now     float64
	seq     uint64
	queue   eventHeap
	seed    uint64
	fired   uint64
	stopped bool
}

// New returns a simulator whose random streams all derive from seed.
// Two simulators built from the same seed replay identical histories.
func New(seed uint64) *Simulator {
	return &Simulator{seed: seed}
}

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// EventsFired returns the number of events executed so far, a cheap
// progress and performance counter.
func (s *Simulator) EventsFired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled (including
// cancelled events that have not yet been discarded).
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule registers fn to run delay seconds from now and returns a
// handle that can cancel it. A negative delay is treated as zero.
func (s *Simulator) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt registers fn to run at absolute virtual time t. Times in
// the past are clamped to the current time.
func (s *Simulator) ScheduleAt(t float64, fn func()) *Event {
	if t < s.now || math.IsNaN(t) {
		t = s.now
	}
	ev := &Event{time: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev
}

// Step executes the single next event. It returns false when the event
// list is empty.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		ev, ok := heap.Pop(&s.queue).(*Event)
		if !ok {
			panic("simcore: corrupt event heap")
		}
		if ev.cancelled {
			continue
		}
		s.now = ev.time
		s.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events in time order until the clock would pass `until`
// or the event list drains. Events scheduled exactly at `until` fire.
// The clock finishes at `until` when it was reached, so a subsequent
// Run continues from there.
func (s *Simulator) Run(until float64) {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.cancelled {
			heap.Pop(&s.queue)
			continue
		}
		if next.time > until {
			break
		}
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// Stop makes the innermost Run return after the current event
// completes. Pending events remain queued.
func (s *Simulator) Stop() { s.stopped = true }

// Stream returns an independent deterministic random stream for the
// named component. The same (seed, name) pair always yields the same
// stream, regardless of creation order, so adding a new consumer never
// perturbs the draws seen by existing ones.
func (s *Simulator) Stream(name string) *Stream {
	return NewStream(s.seed, name)
}
