package simcore

import (
	"math"
	"math/rand/v2"
)

// Stream is a deterministic pseudo-random number stream. Each model
// component draws from its own named stream so that changing one
// component's consumption pattern does not shift the randomness seen
// by the others (common random numbers across policies).
type Stream struct {
	rng *rand.Rand
}

// NewStream derives an independent stream from a root seed and a
// component name. Derivation hashes the name with FNV-1a and whitens
// both words with SplitMix64 before feeding a PCG generator.
func NewStream(seed uint64, name string) *Stream {
	h := fnv1a(name)
	return &Stream{rng: rand.New(rand.NewPCG(splitmix64(seed^h), splitmix64(h^0x9e3779b97f4a7c15)))}
}

func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix64 is the finalizer of the SplitMix64 generator, used here as
// a seed whitener so that related seeds produce unrelated streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (st *Stream) Float64() float64 { return st.rng.Float64() }

// Exp returns an exponential draw with the given mean. A non-positive
// mean returns 0, which models a degenerate (instantaneous) delay.
func (st *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := st.rng.Float64()
	// Guard the log argument: Float64 can return exactly 0.
	for u == 0 {
		u = st.rng.Float64()
	}
	return -mean * math.Log(u)
}

// Uniform returns a uniform draw in [lo, hi). When hi <= lo it returns lo.
func (st *Stream) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*st.rng.Float64()
}

// IntN returns a uniform draw in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (st *Stream) IntN(n int) int { return st.rng.IntN(n) }

// UniformInt returns a uniform draw in the inclusive range [lo, hi].
// When hi <= lo it returns lo.
func (st *Stream) UniformInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + st.rng.IntN(hi-lo+1)
}

// Geometric returns a draw from a geometric distribution on {1, 2, ...}
// with the given mean (mean >= 1). It is the discrete analogue of the
// exponential distribution and models counts such as pages per session.
func (st *Stream) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	u := st.rng.Float64()
	for u == 0 {
		u = st.rng.Float64()
	}
	n := 1 + int(math.Floor(math.Log(u)/math.Log(1-p)))
	if n < 1 {
		n = 1
	}
	return n
}

// Perm returns a random permutation of [0, n).
func (st *Stream) Perm(n int) []int { return st.rng.Perm(n) }

// PickWeighted returns an index drawn from the categorical distribution
// given by weights (non-negative, not all zero). It panics on invalid
// input because weights are always model constants here.
func (st *Stream) PickWeighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("simcore: negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("simcore: weights sum to zero")
	}
	x := st.rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// ZipfWeights returns the K probabilities of a (generalized) Zipf
// distribution: p_j ∝ 1/j^theta for j = 1..k, normalized to sum to 1.
// theta = 1 is the pure Zipf's law assumed by the paper.
func ZipfWeights(k int, theta float64) []float64 {
	if k <= 0 {
		return nil
	}
	w := make([]float64, k)
	var sum float64
	for j := 1; j <= k; j++ {
		w[j-1] = 1 / math.Pow(float64(j), theta)
		sum += w[j-1]
	}
	for j := range w {
		w[j] /= sum
	}
	return w
}
