package simcore

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(3, func() { got = append(got, 3) })
	s.Schedule(1, func() { got = append(got, 1) })
	s.Schedule(2, func() { got = append(got, 2) })
	s.Run(10)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired as %d, want %d", i, got[i], want[i])
		}
	}
}

func TestTieBreakBySequence(t *testing.T) {
	s := New(1)
	var got []string
	s.Schedule(5, func() { got = append(got, "a") })
	s.Schedule(5, func() { got = append(got, "b") })
	s.Schedule(5, func() { got = append(got, "c") })
	s.Run(5)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("tie-broken order = %v, want [a b c]", got)
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	s := New(1)
	fired := 0
	s.Schedule(1, func() { fired++ })
	s.Schedule(2, func() { fired++ })
	s.Schedule(3, func() { fired++ })
	s.Run(2)
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (event at t=3 is beyond until)", fired)
	}
	if s.Now() != 2 {
		t.Errorf("Now() = %v, want clock to land on until=2", s.Now())
	}
	s.Run(3)
	if fired != 3 {
		t.Errorf("fired = %d after second Run, want 3", fired)
	}
}

func TestClockAdvancesToUntilWhenIdle(t *testing.T) {
	s := New(1)
	s.Run(100)
	if s.Now() != 100 {
		t.Errorf("Now() = %v, want 100 on an empty event list", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	ev := s.Schedule(1, func() { fired = true })
	ev.Cancel()
	s.Run(10)
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestCancelFromWithinEvent(t *testing.T) {
	s := New(1)
	fired := false
	var victim *Event
	s.Schedule(1, func() { victim.Cancel() })
	victim = s.Schedule(2, func() { fired = true })
	s.Run(10)
	if fired {
		t.Error("event cancelled by an earlier event still fired")
	}
}

func TestScheduleWithinEvent(t *testing.T) {
	s := New(1)
	var times []float64
	var chain func()
	chain = func() {
		times = append(times, s.Now())
		if len(times) < 4 {
			s.Schedule(2.5, chain)
		}
	}
	s.Schedule(0, chain)
	s.Run(100)
	want := []float64{0, 2.5, 5, 7.5}
	for i, w := range want {
		if math.Abs(times[i]-w) > 1e-9 {
			t.Errorf("chain event %d at t=%v, want %v", i, times[i], w)
		}
	}
}

func TestNegativeAndNaNDelaysClamp(t *testing.T) {
	s := New(1)
	s.Schedule(5, func() {})
	s.Run(5)
	fired := 0
	s.Schedule(-3, func() { fired++ })
	s.Schedule(math.NaN(), func() { fired++ })
	s.ScheduleAt(1, func() { fired++ }) // in the past: clamps to now
	s.Run(5)
	if fired != 3 {
		t.Errorf("fired = %d, want 3 (clamped events fire immediately)", fired)
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	fired := 0
	s.Schedule(1, func() { fired++; s.Stop() })
	s.Schedule(2, func() { fired++ })
	s.Run(10)
	if fired != 1 {
		t.Errorf("fired = %d, want 1 after Stop", fired)
	}
	s.Run(10)
	if fired != 2 {
		t.Errorf("fired = %d, want 2: a later Run resumes", fired)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed uint64) []float64 {
		s := New(seed)
		st := s.Stream("arrivals")
		var samples []float64
		var next func()
		next = func() {
			samples = append(samples, s.Now())
			s.Schedule(st.Exp(10), next)
		}
		s.Schedule(0, next)
		s.Run(500)
		return samples
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical histories")
		}
	}
}

func TestStreamIndependenceFromCreationOrder(t *testing.T) {
	s1 := New(7)
	a := s1.Stream("alpha")
	_ = s1.Stream("beta")
	firstA := a.Float64()

	s2 := New(7)
	_ = s2.Stream("beta")
	a2 := s2.Stream("alpha")
	if got := a2.Float64(); got != firstA {
		t.Errorf("stream draw depends on creation order: %v vs %v", got, firstA)
	}
}

func TestExpMean(t *testing.T) {
	st := NewStream(1, "exp")
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += st.Exp(15)
	}
	mean := sum / n
	if math.Abs(mean-15) > 0.3 {
		t.Errorf("sample mean of Exp(15) = %v, want ~15", mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	st := NewStream(1, "exp0")
	if got := st.Exp(0); got != 0 {
		t.Errorf("Exp(0) = %v, want 0", got)
	}
	if got := st.Exp(-5); got != 0 {
		t.Errorf("Exp(-5) = %v, want 0", got)
	}
}

func TestUniformIntBoundsInclusive(t *testing.T) {
	st := NewStream(3, "hits")
	seen := make(map[int]bool)
	for i := 0; i < 20000; i++ {
		v := st.UniformInt(5, 15)
		if v < 5 || v > 15 {
			t.Fatalf("UniformInt(5,15) = %d out of range", v)
		}
		seen[v] = true
	}
	for v := 5; v <= 15; v++ {
		if !seen[v] {
			t.Errorf("UniformInt(5,15) never produced %d in 20000 draws", v)
		}
	}
	if got := st.UniformInt(9, 9); got != 9 {
		t.Errorf("UniformInt(9,9) = %d, want 9", got)
	}
	if got := st.UniformInt(9, 3); got != 9 {
		t.Errorf("UniformInt(lo>hi) = %d, want lo", got)
	}
}

func TestGeometricMeanAndSupport(t *testing.T) {
	st := NewStream(4, "pages")
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		v := st.Geometric(20)
		if v < 1 {
			t.Fatalf("Geometric produced %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if math.Abs(mean-20) > 0.5 {
		t.Errorf("sample mean of Geometric(20) = %v, want ~20", mean)
	}
	if got := st.Geometric(0.5); got != 1 {
		t.Errorf("Geometric(mean<=1) = %d, want 1", got)
	}
}

func TestPickWeighted(t *testing.T) {
	st := NewStream(5, "pick")
	counts := make([]int, 3)
	w := []float64{1, 2, 7}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[st.PickWeighted(w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("PickWeighted freq[%d] = %v, want ~%v", i, got, want)
		}
	}
}

func TestPickWeightedPanics(t *testing.T) {
	st := NewStream(5, "pick")
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("zero weights", func() { st.PickWeighted([]float64{0, 0}) })
	assertPanics("negative weight", func() { st.PickWeighted([]float64{1, -1}) })
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(20, 1)
	if len(w) != 20 {
		t.Fatalf("len = %d, want 20", len(w))
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v, want 1", sum)
	}
	for j := 1; j < len(w); j++ {
		if w[j] > w[j-1] {
			t.Errorf("weights not monotone at %d: %v > %v", j, w[j], w[j-1])
		}
	}
	// Pure Zipf: w[0]/w[j] == j+1.
	for j := range w {
		ratio := w[0] / w[j]
		if math.Abs(ratio-float64(j+1)) > 1e-9 {
			t.Errorf("w[0]/w[%d] = %v, want %d", j, ratio, j+1)
		}
	}
	if got := ZipfWeights(0, 1); got != nil {
		t.Errorf("ZipfWeights(0,1) = %v, want nil", got)
	}
}

func TestZipfWeightsProperty(t *testing.T) {
	f := func(kRaw uint8, thetaRaw uint8) bool {
		k := int(kRaw%100) + 1
		theta := float64(thetaRaw%30) / 10
		w := ZipfWeights(k, theta)
		var sum float64
		for _, v := range w {
			if v <= 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventsFiredAndPending(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		s.Schedule(float64(i), func() {})
	}
	if s.Pending() != 5 {
		t.Errorf("Pending = %d, want 5", s.Pending())
	}
	s.Run(10)
	if s.EventsFired() != 5 {
		t.Errorf("EventsFired = %d, want 5", s.EventsFired())
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after run, want 0", s.Pending())
	}
}
