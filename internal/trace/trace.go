// Package trace records and replays the client workload as an access
// trace: one line per page request with its virtual time, source
// domain, client, hit count, and whether it opens a new session.
//
// A trace makes the workload a first-class artifact: the same trace
// can drive every scheduling policy (paired comparison with identical
// arrivals), be archived alongside results, or be synthesized from a
// real server log. Generate produces a trace that replays *exactly*
// like a live simulation with the same seed — verified by test.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"dnslb/internal/simcore"
	"dnslb/internal/workload"
)

// Record is one page request of the trace.
type Record struct {
	// Time is the virtual arrival time in seconds.
	Time float64
	// Domain is the source domain index.
	Domain int
	// Client is the client index within the whole population.
	Client int
	// Hits is the page's burst size (HTML page plus objects).
	Hits int
	// NewSession marks the first page of a session: the client
	// (re-)resolves the site name before this request.
	NewSession bool
}

const header = "# dnslb trace v1: time domain client hits newsession"

// Write encodes records as a plain-text trace.
func Write(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, header); err != nil {
		return err
	}
	for _, r := range records {
		ns := 0
		if r.NewSession {
			ns = 1
		}
		if _, err := fmt.Fprintf(bw, "%.6f %d %d %d %d\n", r.Time, r.Domain, r.Client, r.Hits, ns); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a trace written by Write. Lines starting with '#' are
// comments; records must be in non-decreasing time order.
func Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Record
	lastTime := math.Inf(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want 5", lineNo, len(fields))
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || math.IsNaN(t) || t < 0 {
			return nil, fmt.Errorf("trace: line %d: bad time %q", lineNo, fields[0])
		}
		domain, err := strconv.Atoi(fields[1])
		if err != nil || domain < 0 {
			return nil, fmt.Errorf("trace: line %d: bad domain %q", lineNo, fields[1])
		}
		client, err := strconv.Atoi(fields[2])
		if err != nil || client < 0 {
			return nil, fmt.Errorf("trace: line %d: bad client %q", lineNo, fields[2])
		}
		hits, err := strconv.Atoi(fields[3])
		if err != nil || hits < 1 {
			return nil, fmt.Errorf("trace: line %d: bad hits %q", lineNo, fields[3])
		}
		ns, err := strconv.Atoi(fields[4])
		if err != nil || (ns != 0 && ns != 1) {
			return nil, fmt.Errorf("trace: line %d: bad newsession %q", lineNo, fields[4])
		}
		if t < lastTime {
			return nil, fmt.Errorf("trace: line %d: time goes backwards (%v after %v)", lineNo, t, lastTime)
		}
		lastTime = t
		out = append(out, Record{Time: t, Domain: domain, Client: client, Hits: hits, NewSession: ns == 1})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, errors.New("trace: no records")
	}
	return out, nil
}

// Generate synthesizes a trace from the workload model over the given
// horizon in virtual seconds. It replicates the simulator's client
// processes exactly — same stream names, same draw order — so a replay
// with the same seed reproduces a live simulation bit for bit.
func Generate(wl workload.Config, horizon float64, seed uint64) ([]Record, error) {
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, errors.New("trace: horizon must be positive")
	}
	engine := simcore.New(seed)
	thinkStream := engine.Stream("think")
	hitsStream := engine.Stream("hits")
	pagesStream := engine.Stream("pages")
	thinks := wl.ThinkTimes()
	counts := wl.Partition()

	var records []Record
	clientID := 0
	for domain := 0; domain < wl.Domains; domain++ {
		if math.IsInf(thinks[domain], 1) {
			clientID += counts[domain]
			continue
		}
		for c := 0; c < counts[domain]; c++ {
			id := clientID
			d := domain
			pagesLeft := 0
			var wake func()
			wake = func() {
				newSession := false
				if pagesLeft == 0 {
					newSession = true
					pagesLeft = pagesStream.Geometric(wl.PagesPerSession)
				}
				hits := hitsStream.UniformInt(wl.HitsMin, wl.HitsMax)
				records = append(records, Record{
					Time:       engine.Now(),
					Domain:     d,
					Client:     id,
					Hits:       hits,
					NewSession: newSession,
				})
				pagesLeft--
				engine.Schedule(thinkStream.Exp(thinks[d]), wake)
			}
			engine.Schedule(thinkStream.Exp(thinks[domain]), wake)
			clientID++
		}
	}
	engine.Run(horizon)
	// Events fire in time order, so records are already sorted; assert
	// rather than trust.
	if !sort.SliceIsSorted(records, func(a, b int) bool { return records[a].Time < records[b].Time }) {
		return nil, errors.New("trace: generator produced unsorted records")
	}
	return records, nil
}

// Summary aggregates a trace for quick inspection.
type Summary struct {
	Records   int
	Sessions  int
	Clients   int
	Domains   int
	TotalHits int
	Duration  float64
	// HitRate is total hits divided by the trace duration.
	HitRate float64
	// DomainShare is each domain's fraction of the hits.
	DomainShare []float64
}

// Summarize computes a Summary.
func Summarize(records []Record) Summary {
	var s Summary
	if len(records) == 0 {
		return s
	}
	s.Records = len(records)
	clients := make(map[int]bool)
	maxDomain := 0
	for _, r := range records {
		if r.NewSession {
			s.Sessions++
		}
		clients[r.Client] = true
		if r.Domain > maxDomain {
			maxDomain = r.Domain
		}
		s.TotalHits += r.Hits
	}
	s.Clients = len(clients)
	s.Domains = maxDomain + 1
	s.Duration = records[len(records)-1].Time - records[0].Time
	if s.Duration > 0 {
		s.HitRate = float64(s.TotalHits) / s.Duration
	}
	s.DomainShare = make([]float64, s.Domains)
	for _, r := range records {
		s.DomainShare[r.Domain] += float64(r.Hits)
	}
	for i := range s.DomainShare {
		s.DomainShare[i] /= float64(s.TotalHits)
	}
	return s
}
