package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

const sampleLog = `
10.0.0.1 - - [10/Oct/2000:13:55:36 -0700] "GET / HTTP/1.0" 200 2326
10.0.0.1 - - [10/Oct/2000:13:55:36 -0700] "GET /img/a.gif HTTP/1.0" 200 512
10.0.0.1 - - [10/Oct/2000:13:55:37 -0700] "GET /img/b.gif HTTP/1.0" 200 512
10.0.0.2 - - [10/Oct/2000:13:55:40 -0700] "GET / HTTP/1.0" 200 2326
10.0.0.1 - - [10/Oct/2000:13:56:10 -0700] "GET /next HTTP/1.0" 200 999
garbage line that does not parse
10.0.0.1 - - [10/Oct/2000:14:40:00 -0700] "GET /later HTTP/1.0" 200 100
`

func TestParseCommonLog(t *testing.T) {
	records, err := ParseCommonLog(strings.NewReader(sampleLog), CLFOptions{Domains: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Expected pages:
	//   host1 t=0    hits=3 (burst within the 1 s page gap) new session
	//   host2 t=4    hits=1 new session
	//   host1 t=34   hits=1 same session
	//   host1 t=2664 hits=1 new session (44 min idle > 30 min timeout)
	if len(records) != 4 {
		t.Fatalf("records = %d, want 4: %+v", len(records), records)
	}
	r0 := records[0]
	if r0.Time != 0 || r0.Hits != 3 || !r0.NewSession {
		t.Errorf("first page = %+v, want t=0 hits=3 new session", r0)
	}
	r1 := records[1]
	if math.Abs(r1.Time-4) > 1e-9 || r1.Hits != 1 || !r1.NewSession {
		t.Errorf("second page = %+v, want t=4 hits=1 new session", r1)
	}
	r2 := records[2]
	if math.Abs(r2.Time-34) > 1e-9 || r2.NewSession {
		t.Errorf("third page = %+v, want t=34 continuing session", r2)
	}
	r3 := records[3]
	if !r3.NewSession {
		t.Errorf("page after 44 min idle should open a new session: %+v", r3)
	}
	// Same host keeps the same client id and domain.
	if r0.Client != r2.Client || r0.Domain != r2.Domain {
		t.Error("host identity not stable across pages")
	}
	if r0.Client == r1.Client {
		t.Error("distinct hosts share a client id")
	}
}

func TestParseCommonLogCustomDomainMapper(t *testing.T) {
	records, err := ParseCommonLog(strings.NewReader(sampleLog), CLFOptions{
		DomainOf: func(host string) int {
			if host == "10.0.0.1" {
				return 0
			}
			return 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if r.Client == records[0].Client && r.Domain != 0 {
			t.Errorf("host1 mapped to domain %d, want 0", r.Domain)
		}
	}
}

func TestParseCommonLogErrors(t *testing.T) {
	if _, err := ParseCommonLog(strings.NewReader("no valid lines\n# comment"), CLFOptions{}); err == nil {
		t.Error("unparsable log should error")
	}
	if _, err := ParseCommonLog(strings.NewReader(""), CLFOptions{}); err == nil {
		t.Error("empty log should error")
	}
}

func TestParseCLFLine(t *testing.T) {
	host, ts, ok := parseCLFLine(`example.net - - [10/Oct/2000:13:55:36 -0700] "GET / HTTP/1.0" 200 1`)
	if !ok || host != "example.net" {
		t.Fatalf("parse failed: %v %v", host, ok)
	}
	want := time.Date(2000, 10, 10, 13, 55, 36, 0, time.FixedZone("", -7*3600))
	if !ts.Equal(want) {
		t.Errorf("ts = %v, want %v", ts, want)
	}
	bad := []string{
		"", "# comment", "host-only", "host no [bracket",
		"host - - [not-a-time] \"GET /\" 200 1",
		"host - - [10/Oct/2000:13:55:36 -0700 no close",
	}
	for _, line := range bad {
		if _, _, ok := parseCLFLine(line); ok {
			t.Errorf("line %q should not parse", line)
		}
	}
}

func TestCLFRoundTripThroughFormat(t *testing.T) {
	// records → synthetic CLF → records: page structure must survive
	// (hit counts coalesce back because bursts share a timestamp).
	in := []Record{
		{Time: 0, Domain: 2, Client: 0, Hits: 3, NewSession: true},
		{Time: 10, Domain: 2, Client: 0, Hits: 2},
		{Time: 12, Domain: 1, Client: 1, Hits: 1, NewSession: true},
	}
	var buf bytes.Buffer
	base := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	if err := FormatCommonLog(&buf, in, base); err != nil {
		t.Fatal(err)
	}
	out, err := ParseCommonLog(&buf, CLFOptions{Domains: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("round trip records = %d, want 3: %+v", len(out), out)
	}
	for i := range in {
		if out[i].Hits != in[i].Hits {
			t.Errorf("page %d hits = %d, want %d", i, out[i].Hits, in[i].Hits)
		}
		if math.Abs(out[i].Time-in[i].Time) > 1e-6 {
			t.Errorf("page %d time = %v, want %v", i, out[i].Time, in[i].Time)
		}
	}
	if !out[0].NewSession || out[1].NewSession {
		t.Error("session structure lost in round trip")
	}
}

func TestParsedLogReplaysInSim(t *testing.T) {
	// The imported trace must satisfy every invariant Read/sim expect:
	// encode and decode it.
	records, err := ParseCommonLog(strings.NewReader(sampleLog), CLFOptions{Domains: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, records); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(records) {
		t.Fatalf("round trip lost records: %d vs %d", len(back), len(records))
	}
}
