package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dnslb/internal/workload"
)

func sampleRecords() []Record {
	return []Record{
		{Time: 0.5, Domain: 0, Client: 1, Hits: 7, NewSession: true},
		{Time: 1.25, Domain: 0, Client: 1, Hits: 5},
		{Time: 2.0, Domain: 3, Client: 9, Hits: 15, NewSession: true},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleRecords()
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# dnslb trace v1") {
		t.Error("missing header comment")
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records", len(out))
	}
	for i := range in {
		if math.Abs(out[i].Time-in[i].Time) > 1e-6 ||
			out[i].Domain != in[i].Domain ||
			out[i].Client != in[i].Client ||
			out[i].Hits != in[i].Hits ||
			out[i].NewSession != in[i].NewSession {
			t.Errorf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"",                         // no records
		"1.0 0 1 5",                // missing field
		"x 0 1 5 0",                // bad time
		"-1 0 1 5 0",               // negative time
		"1.0 -1 1 5 0",             // bad domain
		"1.0 0 -1 5 0",             // bad client
		"1.0 0 1 0 0",              // zero hits
		"1.0 0 1 5 7",              // bad newsession flag
		"2.0 0 1 5 0\n1.0 0 1 5 0", // time goes backwards
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d (%q) should fail", i, c)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\n1.0 0 1 5 1\n# more\n2.0 0 1 3 0\n"
	out, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("records = %d, want 2", len(out))
	}
}

func TestGenerate(t *testing.T) {
	wl := workload.Default()
	records, err := Generate(wl, 600, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("empty trace")
	}
	// Roughly clients/think pages per second: 500/15 ≈ 33/s × 600 s.
	if len(records) < 15000 || len(records) > 25000 {
		t.Errorf("records = %d, want ≈ 20000", len(records))
	}
	var sessions int
	for i, r := range records {
		if r.Time < 0 || r.Time > 600 {
			t.Fatalf("record %d at %v outside horizon", i, r.Time)
		}
		if r.Hits < wl.HitsMin || r.Hits > wl.HitsMax {
			t.Fatalf("record %d hits %d out of range", i, r.Hits)
		}
		if r.Domain < 0 || r.Domain >= wl.Domains {
			t.Fatalf("record %d domain %d out of range", i, r.Domain)
		}
		if r.NewSession {
			sessions++
		}
	}
	if sessions == 0 {
		t.Error("no sessions in trace")
	}
	// Every client's first record opens a session.
	first := make(map[int]Record)
	for _, r := range records {
		if _, seen := first[r.Client]; !seen {
			first[r.Client] = r
			if !r.NewSession {
				t.Fatalf("client %d starts mid-session", r.Client)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := workload.Default()
	bad.Domains = 0
	if _, err := Generate(bad, 600, 1); err == nil {
		t.Error("invalid workload should error")
	}
	if _, err := Generate(workload.Default(), 0, 1); err == nil {
		t.Error("zero horizon should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(workload.Default(), 300, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(workload.Default(), 300, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleRecords())
	if s.Records != 3 || s.Sessions != 2 || s.Clients != 2 || s.Domains != 4 {
		t.Errorf("summary = %+v", s)
	}
	if s.TotalHits != 27 {
		t.Errorf("TotalHits = %d, want 27", s.TotalHits)
	}
	if math.Abs(s.Duration-1.5) > 1e-9 {
		t.Errorf("Duration = %v, want 1.5", s.Duration)
	}
	if math.Abs(s.HitRate-18) > 1e-9 {
		t.Errorf("HitRate = %v, want 18", s.HitRate)
	}
	if math.Abs(s.DomainShare[0]-12.0/27) > 1e-9 {
		t.Errorf("DomainShare[0] = %v", s.DomainShare[0])
	}
	if got := Summarize(nil); got.Records != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestGeneratedZipfSkew(t *testing.T) {
	records, err := Generate(workload.Default(), 1200, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(records)
	// Pure Zipf: domain 0 carries ≈ 28% of the hits.
	if s.DomainShare[0] < 0.2 || s.DomainShare[0] > 0.36 {
		t.Errorf("domain 0 share = %v, want ≈ 0.28", s.DomainShare[0])
	}
	if s.DomainShare[19] > 0.05 {
		t.Errorf("domain 19 share = %v, want tiny", s.DomainShare[19])
	}
}
