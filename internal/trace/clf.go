package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"time"

	"dnslb/internal/logging"
)

// Common Log Format import: convert a real Web server access log into
// a replayable trace. Each log line is one hit; consecutive hits from
// the same remote host within PageGap are coalesced into one page
// burst (the paper's "HTML page and the objects contained in it"), and
// a host idle for longer than SessionTimeout starts a new session
// (forcing a fresh address resolution on replay).

// CLFOptions tunes the log conversion.
type CLFOptions struct {
	// DomainOf maps a remote host string to a connected-domain index.
	// Nil hashes the host into Domains buckets.
	DomainOf func(host string) int
	// Domains is the connected-domain count for the default hash
	// mapper (ignored when DomainOf is set; default 20).
	Domains int
	// PageGap is the maximum spacing between hits of one page burst
	// (default 1 s).
	PageGap time.Duration
	// SessionTimeout is the idle period after which a host's next
	// request opens a new session (default 30 min).
	SessionTimeout time.Duration
	// Logger receives a debug record per skipped line and one warning
	// summarizing the skips. Nil discards them.
	Logger *slog.Logger
}

func (o *CLFOptions) setDefaults() {
	if o.Domains <= 0 {
		o.Domains = 20
	}
	if o.Logger == nil {
		o.Logger = logging.Discard()
	}
	if o.PageGap <= 0 {
		o.PageGap = time.Second
	}
	if o.SessionTimeout <= 0 {
		o.SessionTimeout = 30 * time.Minute
	}
	if o.DomainOf == nil {
		domains := o.Domains
		o.DomainOf = func(host string) int {
			const prime = 1099511628211
			h := uint64(14695981039346656037)
			for i := 0; i < len(host); i++ {
				h ^= uint64(host[i])
				h *= prime
			}
			h ^= h >> 33
			h *= 0xff51afd7ed558ccd
			h ^= h >> 33
			return int(h % uint64(domains))
		}
	}
}

// clfTimeLayout is the CLF timestamp, e.g. "10/Oct/2000:13:55:36 -0700".
const clfTimeLayout = "02/Jan/2006:15:04:05 -0700"

type hostState struct {
	client    int
	lastSeen  time.Time
	pageStart time.Time
	pageHits  int
	inSession bool
}

// ParseCommonLog converts a Common Log Format access log into trace
// records. Lines that do not parse are skipped (server logs are messy);
// the error is non-nil only when no line parses at all or reading
// fails. Record times are seconds relative to the first parsed hit.
func ParseCommonLog(r io.Reader, opts CLFOptions) ([]Record, error) {
	opts.setDefaults()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	hosts := make(map[string]*hostState)
	var (
		records []Record
		t0      time.Time
		haveT0  bool
		parsed  int
		skipped int
		lineNo  int
	)
	flush := func(host string, st *hostState) {
		if st.pageHits == 0 {
			return
		}
		records = append(records, Record{
			Time:       st.pageStart.Sub(t0).Seconds(),
			Domain:     opts.DomainOf(host),
			Client:     st.client,
			Hits:       st.pageHits,
			NewSession: !st.inSession,
		})
		st.inSession = true
		st.pageHits = 0
	}
	for sc.Scan() {
		lineNo++
		host, ts, ok := parseCLFLine(sc.Text())
		if !ok {
			if line := strings.TrimSpace(sc.Text()); line != "" && !strings.HasPrefix(line, "#") {
				skipped++
				opts.Logger.Debug("skipping unparsable access-log line", "line", lineNo)
			}
			continue
		}
		parsed++
		if !haveT0 {
			t0 = ts
			haveT0 = true
		}
		st, seen := hosts[host]
		if !seen {
			st = &hostState{client: len(hosts), pageStart: ts}
			hosts[host] = st
		}
		if st.pageHits > 0 && ts.Sub(st.pageStart) > opts.PageGap {
			flush(host, st)
		}
		if st.inSession && ts.Sub(st.lastSeen) > opts.SessionTimeout {
			st.inSession = false
		}
		if st.pageHits == 0 {
			st.pageStart = ts
		}
		st.pageHits++
		st.lastSeen = ts
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if parsed == 0 {
		return nil, errors.New("trace: no parsable Common Log Format lines")
	}
	if skipped > 0 {
		opts.Logger.Warn("skipped unparsable access-log lines",
			"skipped", skipped, "parsed", parsed)
	}
	for host, st := range hosts {
		flush(host, st)
	}
	sort.SliceStable(records, func(a, b int) bool { return records[a].Time < records[b].Time })
	// Guard against logs with clock skew: clamp any record before t0.
	for i := range records {
		if records[i].Time < 0 {
			records[i].Time = 0
		}
	}
	return records, nil
}

// parseCLFLine extracts the remote host and timestamp of one CLF line:
//
//	host ident authuser [timestamp] "request" status bytes
func parseCLFLine(line string) (host string, ts time.Time, ok bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return "", time.Time{}, false
	}
	sp := strings.IndexByte(line, ' ')
	if sp <= 0 {
		return "", time.Time{}, false
	}
	host = line[:sp]
	open := strings.IndexByte(line, '[')
	if open < 0 {
		return "", time.Time{}, false
	}
	close := strings.IndexByte(line[open:], ']')
	if close < 0 {
		return "", time.Time{}, false
	}
	stamp := line[open+1 : open+close]
	ts, err := time.Parse(clfTimeLayout, stamp)
	if err != nil {
		return "", time.Time{}, false
	}
	return host, ts, true
}

// FormatCommonLog renders trace records as a synthetic Common Log
// Format access log (one line per hit), the inverse of ParseCommonLog
// for interoperability with standard log tooling. base anchors the
// virtual time axis.
func FormatCommonLog(w io.Writer, records []Record, base time.Time) error {
	bw := bufio.NewWriter(w)
	for _, rec := range records {
		ts := base.Add(time.Duration(rec.Time * float64(time.Second)))
		for h := 0; h < rec.Hits; h++ {
			_, err := fmt.Fprintf(bw, "client%d.domain%d.example - - [%s] \"GET /page HTTP/1.0\" 200 1024\n",
				rec.Client, rec.Domain, ts.Format(clfTimeLayout))
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
