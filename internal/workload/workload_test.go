package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero domains", func(c *Config) { c.Domains = 0 }},
		{"zero clients", func(c *Config) { c.Clients = 0 }},
		{"fewer clients than domains", func(c *Config) { c.Clients = 10; c.Domains = 20 }},
		{"negative theta", func(c *Config) { c.ZipfTheta = -1 }},
		{"zero think", func(c *Config) { c.MeanThinkTime = 0 }},
		{"pages < 1", func(c *Config) { c.PagesPerSession = 0.5 }},
		{"zero hits min", func(c *Config) { c.HitsMin = 0 }},
		{"hits max < min", func(c *Config) { c.HitsMax = 4 }},
		{"negative perturbation", func(c *Config) { c.PerturbationPct = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := Default()
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestSharesZipf(t *testing.T) {
	c := Default()
	s := c.Shares()
	if len(s) != 20 {
		t.Fatalf("len = %d", len(s))
	}
	// Pure Zipf: share_0 / share_j = j+1.
	for j := range s {
		if math.Abs(s[0]/s[j]-float64(j+1)) > 1e-9 {
			t.Errorf("share ratio at %d wrong", j)
		}
	}
	// The paper's motivating skew: a large majority of the requests
	// come from a small fraction of the domains.
	var top25 float64
	for j := 0; j < 5; j++ {
		top25 += s[j]
	}
	if top25 < 0.6 {
		t.Errorf("top 25%% of domains carry %v of load, want strong skew", top25)
	}
}

func TestSharesUniform(t *testing.T) {
	c := Default()
	c.Uniform = true
	for _, s := range c.Shares() {
		if math.Abs(s-0.05) > 1e-12 {
			t.Errorf("uniform share = %v, want 0.05", s)
		}
	}
}

func TestPartitionSumsAndFloors(t *testing.T) {
	c := Default()
	counts := c.Partition()
	sum := 0
	for j, n := range counts {
		if n < 1 {
			t.Errorf("domain %d has %d clients, want >= 1", j, n)
		}
		sum += n
	}
	if sum != c.Clients {
		t.Errorf("partition sums to %d, want %d", sum, c.Clients)
	}
	// The hottest domain holds the most clients.
	for j := 1; j < len(counts); j++ {
		if counts[j] > counts[0] {
			t.Errorf("domain %d (%d) exceeds domain 0 (%d)", j, counts[j], counts[0])
		}
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(kRaw, clientsRaw uint16, uniform bool) bool {
		k := int(kRaw%100) + 1
		clients := k + int(clientsRaw%2000)
		c := Default()
		c.Domains = k
		c.Clients = clients
		c.Uniform = uniform
		counts := c.Partition()
		sum := 0
		for _, n := range counts {
			if n < 1 {
				return false
			}
			sum += n
		}
		return sum == clients
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNominalRatesMatchPaperLoad(t *testing.T) {
	// 500 clients × 10 hits / 15 s ≈ 333 hits/s, i.e. 2/3 of the 500
	// hits/s total capacity — the paper's average utilization.
	c := Default()
	if got := c.TotalOfferedRate(); math.Abs(got-1000.0/3) > 1e-9 {
		t.Errorf("TotalOfferedRate = %v, want 333.33", got)
	}
	rates := c.NominalRates()
	var sum float64
	for _, r := range rates {
		sum += r
	}
	if math.Abs(sum-c.TotalOfferedRate()) > 1e-9 {
		t.Errorf("per-domain rates sum to %v, want %v", sum, c.TotalOfferedRate())
	}
	if got := c.MeanHitsPerPage(); got != 10 {
		t.Errorf("MeanHitsPerPage = %v, want 10", got)
	}
}

func TestPerturb(t *testing.T) {
	rates := []float64{100, 50, 50}
	out := Perturb(rates, 10)
	if rates[0] != 100 {
		t.Error("Perturb must not modify its input")
	}
	if math.Abs(out[0]-110) > 1e-9 {
		t.Errorf("busiest rate = %v, want 110", out[0])
	}
	var sum float64
	for _, r := range out {
		sum += r
	}
	if math.Abs(sum-200) > 1e-9 {
		t.Errorf("total rate = %v, want constant 200", sum)
	}
	// Others shrink proportionally: 45 each.
	if math.Abs(out[1]-45) > 1e-9 || math.Abs(out[2]-45) > 1e-9 {
		t.Errorf("other rates = %v, want 45 each", out[1:])
	}
}

func TestPerturbEdgeCases(t *testing.T) {
	// Zero error: unchanged.
	out := Perturb([]float64{10, 20}, 0)
	if out[0] != 10 || out[1] != 20 {
		t.Errorf("zero perturbation changed rates: %v", out)
	}
	// Single domain: unchanged.
	out = Perturb([]float64{10}, 50)
	if out[0] != 10 {
		t.Errorf("single-domain perturbation changed rate: %v", out)
	}
	// Huge error: capped at the total, others go to zero.
	out = Perturb([]float64{90, 10}, 1000)
	if math.Abs(out[0]-100) > 1e-9 || math.Abs(out[1]) > 1e-9 {
		t.Errorf("capped perturbation = %v, want [100 0]", out)
	}
}

func TestPerturbKeepsTotalProperty(t *testing.T) {
	f := func(raw []uint16, errRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		rates := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			rates[i] = float64(r%1000) + 1
			total += rates[i]
		}
		out := Perturb(rates, float64(errRaw%100))
		var sum float64
		for _, r := range out {
			if r < -1e-9 {
				return false
			}
			sum += r
		}
		return math.Abs(sum-total)/total < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestActualRatesWithPerturbation(t *testing.T) {
	c := Default()
	c.PerturbationPct = 30
	nominal := c.NominalRates()
	actual := c.ActualRates()
	if actual[0] <= nominal[0] {
		t.Errorf("busiest domain rate %v should exceed nominal %v", actual[0], nominal[0])
	}
	if math.Abs(actual[0]-nominal[0]*1.3) > 1e-9 {
		t.Errorf("busiest domain rate = %v, want %v", actual[0], nominal[0]*1.3)
	}
	var sumN, sumA float64
	for j := range nominal {
		sumN += nominal[j]
		sumA += actual[j]
	}
	if math.Abs(sumN-sumA) > 1e-9 {
		t.Errorf("perturbation changed total rate: %v vs %v", sumA, sumN)
	}
}

func TestThinkTimes(t *testing.T) {
	c := Default()
	thinks := c.ThinkTimes()
	// Without perturbation every domain's think time is the configured
	// mean (up to partition rounding).
	counts := c.Partition()
	rates := c.NominalRates()
	for j, th := range thinks {
		want := float64(counts[j]) * c.MeanHitsPerPage() / rates[j]
		if math.Abs(th-want) > 1e-9 {
			t.Errorf("think[%d] = %v, want %v", j, th, want)
		}
		if math.Abs(th-15) > 1e-9 {
			t.Errorf("unperturbed think[%d] = %v, want 15", j, th)
		}
	}
	// With perturbation the busiest domain thinks faster.
	c.PerturbationPct = 20
	thinks = c.ThinkTimes()
	if thinks[0] >= 15 {
		t.Errorf("perturbed busiest think = %v, want < 15", thinks[0])
	}
	if thinks[5] <= 15 {
		t.Errorf("perturbed normal think = %v, want > 15", thinks[5])
	}
}

func TestOracleWeights(t *testing.T) {
	c := Default()
	c.PerturbationPct = 50
	w := c.OracleWeights()
	var sum float64
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("oracle weights sum to %v", sum)
	}
	// Oracle weights ignore the perturbation (that is the point of the
	// estimation-error experiment).
	c2 := Default()
	w2 := c2.OracleWeights()
	for j := range w {
		if math.Abs(w[j]-w2[j]) > 1e-12 {
			t.Errorf("oracle weight %d differs under perturbation: %v vs %v", j, w[j], w2[j])
		}
	}
}
