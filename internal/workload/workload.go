// Package workload models the client population of the paper's study:
// 500 clients partitioned among K connected domains by a pure Zipf
// distribution, each client issuing sessions of page requests with
// exponential think times and 5–15 hits per page.
//
// The package also implements the rate perturbation used by the
// estimation-error experiments: the busiest domain's request rate is
// increased by e% while the others are proportionally decreased so the
// total stays constant.
package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dnslb/internal/simcore"
)

// Config describes the client population.
type Config struct {
	// Domains is the number of connected domains K (paper default 20).
	Domains int
	// Clients is the total client count (paper default 500).
	Clients int
	// ZipfTheta is the Zipf exponent; 1 is the paper's pure Zipf.
	// Ignored when Uniform is set.
	ZipfTheta float64
	// Uniform partitions clients evenly, the paper's "ideal" case.
	Uniform bool
	// MeanThinkTime is the mean time between page requests in seconds
	// (paper default 15, studied range 0–30).
	MeanThinkTime float64
	// PagesPerSession is the mean number of page requests per session
	// (paper default 20).
	PagesPerSession float64
	// HitsMin and HitsMax bound the uniform discrete number of hits
	// (HTML page plus embedded objects) per page request (paper: 5–15).
	HitsMin, HitsMax int
	// PerturbationPct skews the actual request rates for the
	// estimation-error experiments: the busiest domain's rate grows by
	// this percentage and the others shrink proportionally. 0 disables.
	PerturbationPct float64
}

// Default returns the paper's default workload parameters.
func Default() Config {
	return Config{
		Domains:         20,
		Clients:         500,
		ZipfTheta:       1,
		MeanThinkTime:   15,
		PagesPerSession: 20,
		HitsMin:         5,
		HitsMax:         15,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.Domains <= 0:
		return errors.New("workload: Domains must be positive")
	case c.Clients <= 0:
		return errors.New("workload: Clients must be positive")
	case c.Clients < c.Domains:
		return fmt.Errorf("workload: %d clients cannot cover %d domains", c.Clients, c.Domains)
	case !c.Uniform && c.ZipfTheta < 0:
		return errors.New("workload: ZipfTheta must be non-negative")
	case c.MeanThinkTime <= 0:
		return errors.New("workload: MeanThinkTime must be positive")
	case c.PagesPerSession < 1:
		return errors.New("workload: PagesPerSession must be at least 1")
	case c.HitsMin <= 0 || c.HitsMax < c.HitsMin:
		return fmt.Errorf("workload: hits range [%d,%d] invalid", c.HitsMin, c.HitsMax)
	case c.PerturbationPct < 0:
		return errors.New("workload: PerturbationPct must be non-negative")
	}
	return nil
}

// MeanHitsPerPage returns the expected number of hits per page request.
func (c Config) MeanHitsPerPage() float64 {
	return float64(c.HitsMin+c.HitsMax) / 2
}

// Shares returns the probability that a client belongs to each domain:
// pure Zipf by default, uniform in the ideal case.
func (c Config) Shares() []float64 {
	if c.Uniform {
		s := make([]float64, c.Domains)
		for j := range s {
			s[j] = 1 / float64(c.Domains)
		}
		return s
	}
	return simcore.ZipfWeights(c.Domains, c.ZipfTheta)
}

// Partition apportions the Clients among the Domains following Shares,
// using largest-remainder rounding so the counts sum exactly to
// Clients and every domain keeps at least one client.
func (c Config) Partition() []int {
	shares := c.Shares()
	counts := make([]int, c.Domains)
	type rem struct {
		j    int
		frac float64
	}
	rems := make([]rem, c.Domains)
	assigned := 0
	for j, s := range shares {
		exact := s * float64(c.Clients)
		counts[j] = int(math.Floor(exact))
		rems[j] = rem{j: j, frac: exact - math.Floor(exact)}
		assigned += counts[j]
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].j < rems[b].j
	})
	for i := 0; assigned < c.Clients; i++ {
		counts[rems[i%len(rems)].j]++
		assigned++
	}
	// Every connected domain has at least one client, taking from the
	// largest domain (it can spare one by the Clients >= Domains check).
	for j := range counts {
		if counts[j] == 0 {
			big := 0
			for i := range counts {
				if counts[i] > counts[big] {
					big = i
				}
			}
			counts[big]--
			counts[j]++
		}
	}
	return counts
}

// NominalRates returns each domain's offered hit rate in hits/second
// implied by its client count: clients_j · meanHits / meanThink.
func (c Config) NominalRates() []float64 {
	counts := c.Partition()
	rates := make([]float64, c.Domains)
	perClient := c.MeanHitsPerPage() / c.MeanThinkTime
	for j, n := range counts {
		rates[j] = float64(n) * perClient
	}
	return rates
}

// TotalOfferedRate returns the aggregate offered hit rate in hits/s.
func (c Config) TotalOfferedRate() float64 {
	return float64(c.Clients) * c.MeanHitsPerPage() / c.MeanThinkTime
}

// ActualRates returns the per-domain hit rates after applying the
// configured perturbation. With PerturbationPct == 0 these equal the
// nominal rates. The perturbation is capped so no other domain's rate
// goes negative.
func (c Config) ActualRates() []float64 {
	rates := c.NominalRates()
	if c.PerturbationPct == 0 {
		return rates
	}
	return Perturb(rates, c.PerturbationPct)
}

// Perturb applies the paper's estimation-error model to a rate vector:
// the busiest domain's rate increases by errPct percent and every
// other domain's rate is scaled down so the total stays constant. The
// returned slice is new; the input is not modified.
func Perturb(rates []float64, errPct float64) []float64 {
	out := make([]float64, len(rates))
	copy(out, rates)
	if len(out) < 2 || errPct <= 0 {
		return out
	}
	busiest := 0
	var total float64
	for j, r := range out {
		if r > out[busiest] {
			busiest = j
		}
		total += r
	}
	grown := out[busiest] * (1 + errPct/100)
	if grown > total {
		grown = total // cap: the busiest domain absorbs everything
	}
	rest := total - out[busiest]
	newRest := total - grown
	scale := 0.0
	if rest > 0 {
		scale = newRest / rest
	}
	for j := range out {
		if j == busiest {
			out[j] = grown
		} else {
			out[j] *= scale
		}
	}
	return out
}

// ThinkTimes converts the actual per-domain rates into per-domain mean
// think times so that the simulator realizes the perturbed rates with
// the fixed integer client partition: think_j = clients_j·meanHits/rate_j.
// Domains whose rate is zero get an effectively infinite think time.
func (c Config) ThinkTimes() []float64 {
	counts := c.Partition()
	rates := c.ActualRates()
	out := make([]float64, c.Domains)
	meanHits := c.MeanHitsPerPage()
	for j := range out {
		if rates[j] <= 0 {
			out[j] = math.Inf(1)
			continue
		}
		out[j] = float64(counts[j]) * meanHits / rates[j]
	}
	return out
}

// OracleWeights returns the relative hidden load weights the DNS would
// hold with perfect (unperturbed) knowledge: the nominal rates
// normalized to sum to one. The estimation-error experiments feed
// these stale weights to the scheduler while the clients follow
// ActualRates.
func (c Config) OracleWeights() []float64 {
	rates := c.NominalRates()
	var total float64
	for _, r := range rates {
		total += r
	}
	out := make([]float64, len(rates))
	for j, r := range rates {
		out[j] = r / total
	}
	return out
}
