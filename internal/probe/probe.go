// Package probe implements active health checking for backend web
// servers: per-target TCP-connect (or shallow HTTP GET) probes on a
// jittered interval with fail-N/rise-M hysteresis.
//
// It is the active counterpart to the passive k-missed-reports
// liveness monitor in internal/dnsserver. The passive detector can
// only notice silence — it waits k report intervals before concluding
// a backend died, and a partitioned report path looks identical to a
// dead backend. Active probes attack both weaknesses: they detect a
// crashed backend in about fail-N × interval regardless of the report
// schedule, and they keep voting "up" for a backend whose report path
// is cut but whose service port still answers. The DNS server combines
// the two detectors: down if either fires, up only when both agree.
//
// The package is transport-only and callback-driven: it knows nothing
// about engines or DNS. Wiring lives in internal/dnsserver.
package probe

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults applied by New when Config leaves the knob zero.
const (
	DefaultInterval = 2 * time.Second
	DefaultFailN    = 3
	DefaultRiseM    = 2
	DefaultJitter   = 0.2
)

// Target is one probe destination. An empty Addr disables probing for
// that slot (the slot keeps reporting up so it never vetoes revival).
type Target struct {
	Addr     string // host:port of the service port to probe
	HTTPPath string // if non-empty, send "GET <path>" and require a 2xx/3xx status
}

// Config configures a Prober.
type Config struct {
	Targets []Target

	Interval time.Duration // mean probe period per target (default 2s)
	Jitter   float64       // fraction of Interval randomized per cycle, [0,1); 0 disables
	Timeout  time.Duration // per-probe dial+response budget (default Interval/2)
	FailN    int           // consecutive failures before declaring down (default 3)
	RiseM    int           // consecutive successes before declaring up (default 2)

	// OnTransition fires outside the prober's locks whenever a target's
	// standing flips. Required for the prober to be useful, optional
	// for tests.
	OnTransition func(target int, down bool)

	Logger *slog.Logger
	Seed   uint64 // fixes the jitter stream; 0 derives one from the clock

	// Dialer overrides net dialing, a seam for tests and for callers
	// that need source-address control. Defaults to net.Dialer.
	Dialer func(ctx context.Context, network, addr string) (net.Conn, error)
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		c.Jitter = 0
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval / 2
	}
	if c.FailN <= 0 {
		c.FailN = DefaultFailN
	}
	if c.RiseM <= 0 {
		c.RiseM = DefaultRiseM
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(discard{}, nil))
	}
	if c.Dialer == nil {
		var d net.Dialer
		c.Dialer = d.DialContext
	}
	return c
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TargetStats is a snapshot of one target's probe history.
type TargetStats struct {
	Addr        string
	Probes      uint64 // probes attempted
	Failures    uint64 // probes that failed
	Transitions uint64 // standing flips (either direction)
	Down        bool
}

// Prober runs one probing goroutine per target.
type Prober struct {
	cfg Config

	mu      sync.Mutex
	targets []*targetState
	started bool
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup
}

type targetState struct {
	target Target
	rng    *rand.Rand // jitter stream; owned by the target's goroutine
	down   atomic.Bool

	probes      atomic.Uint64
	failures    atomic.Uint64
	transitions atomic.Uint64

	consecFail int // owned by the goroutine
	consecOK   int
}

// New validates the configuration and builds a Prober. Call Start to
// begin probing.
func New(cfg Config) (*Prober, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Targets) == 0 {
		return nil, errors.New("probe: no targets")
	}
	for i, t := range cfg.Targets {
		if t.Addr == "" {
			continue
		}
		if _, _, err := net.SplitHostPort(t.Addr); err != nil {
			return nil, fmt.Errorf("probe: target %d addr %q: %w", i, t.Addr, err)
		}
		if t.HTTPPath != "" && !strings.HasPrefix(t.HTTPPath, "/") {
			return nil, fmt.Errorf("probe: target %d http path %q must start with /", i, t.HTTPPath)
		}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	p := &Prober{cfg: cfg, done: make(chan struct{})}
	for i, t := range cfg.Targets {
		p.targets = append(p.targets, &targetState{
			target: t,
			rng:    rand.New(rand.NewPCG(seed, uint64(i)+1)),
		})
	}
	return p, nil
}

// Start launches the probe goroutines. Safe to call once.
func (p *Prober) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started || p.closed {
		return
	}
	p.started = true
	for i, ts := range p.targets {
		if ts.target.Addr == "" {
			continue
		}
		p.wg.Add(1)
		go p.run(i, ts)
	}
}

// Close stops all probing. Idempotent; blocks until the goroutines
// unwind.
func (p *Prober) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	p.mu.Unlock()
	p.wg.Wait()
	return nil
}

// Down reports the prober's current standing for a target. Unprobed
// slots (empty Addr, out of range) are always up.
func (p *Prober) Down(target int) bool {
	if target < 0 || target >= len(p.targets) {
		return false
	}
	return p.targets[target].down.Load()
}

// NumTargets returns the number of configured slots.
func (p *Prober) NumTargets() int { return len(p.targets) }

// Stats snapshots every target's counters.
func (p *Prober) Stats() []TargetStats {
	out := make([]TargetStats, len(p.targets))
	for i, ts := range p.targets {
		out[i] = TargetStats{
			Addr:        ts.target.Addr,
			Probes:      ts.probes.Load(),
			Failures:    ts.failures.Load(),
			Transitions: ts.transitions.Load(),
			Down:        ts.down.Load(),
		}
	}
	return out
}

// run is the per-target probe loop. The first probe fires after a
// random fraction of the interval so a fleet of targets doesn't
// thundering-herd the backends in lockstep.
func (p *Prober) run(idx int, ts *targetState) {
	defer p.wg.Done()
	timer := time.NewTimer(time.Duration(ts.rng.Float64() * float64(p.cfg.Interval)))
	defer timer.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-timer.C:
		}
		p.probeOnce(idx, ts)
		timer.Reset(p.nextInterval(ts))
	}
}

// nextInterval draws interval*(1 ± jitter/2) from the target's stream.
func (p *Prober) nextInterval(ts *targetState) time.Duration {
	iv := float64(p.cfg.Interval)
	if j := p.cfg.Jitter; j > 0 {
		iv *= 1 + j*(ts.rng.Float64()-0.5)
	}
	return time.Duration(iv)
}

func (p *Prober) probeOnce(idx int, ts *targetState) {
	ts.probes.Add(1)
	err := p.check(ts.target)
	if err != nil {
		ts.failures.Add(1)
		ts.consecFail++
		ts.consecOK = 0
		if ts.consecFail == p.cfg.FailN && !ts.down.Load() {
			ts.down.Store(true)
			ts.transitions.Add(1)
			p.cfg.Logger.Warn("probe target down",
				"target", idx, "addr", ts.target.Addr, "consecutive_failures", ts.consecFail, "err", err)
			if p.cfg.OnTransition != nil {
				p.cfg.OnTransition(idx, true)
			}
		}
		return
	}
	ts.consecOK++
	ts.consecFail = 0
	if ts.consecOK == p.cfg.RiseM && ts.down.Load() {
		ts.down.Store(false)
		ts.transitions.Add(1)
		p.cfg.Logger.Info("probe target up",
			"target", idx, "addr", ts.target.Addr, "consecutive_successes", ts.consecOK)
		if p.cfg.OnTransition != nil {
			p.cfg.OnTransition(idx, false)
		}
	}
}

// check performs one probe: a TCP connect, plus a shallow HTTP GET
// when the target has a path configured.
func (p *Prober) check(t Target) error {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.Timeout)
	defer cancel()
	conn, err := p.cfg.Dialer(ctx, "tcp", t.Addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if t.HTTPPath == "" {
		return nil
	}
	deadline, _ := ctx.Deadline()
	conn.SetDeadline(deadline) //nolint:errcheck // best effort
	host, _, _ := net.SplitHostPort(t.Addr)
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nUser-Agent: dnslb-probe\r\nConnection: close\r\n\r\n", t.HTTPPath, host)
	if _, err := conn.Write([]byte(req)); err != nil {
		return fmt.Errorf("write: %w", err)
	}
	status, err := bufio.NewReaderSize(conn, 512).ReadString('\n')
	if err != nil {
		return fmt.Errorf("read status: %w", err)
	}
	return checkStatusLine(status)
}

// checkStatusLine accepts "HTTP/1.x NNN ..." with NNN in 200–399.
func checkStatusLine(line string) error {
	line = strings.TrimRight(line, "\r\n")
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "HTTP/") {
		return fmt.Errorf("malformed status line %q", line)
	}
	code := fields[1]
	if len(code) != 3 || code[0] < '2' || code[0] > '3' {
		return fmt.Errorf("unhealthy status %q", line)
	}
	for i := 1; i < 3; i++ {
		if code[i] < '0' || code[i] > '9' {
			return fmt.Errorf("malformed status code %q", code)
		}
	}
	return nil
}
