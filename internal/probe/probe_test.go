package probe

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// fakeDialer lets tests script per-target probe outcomes without real
// sockets or real time.
type fakeDialer struct {
	mu   sync.Mutex
	fail map[string]bool // addr -> probe should fail
}

func (d *fakeDialer) setFail(addr string, fail bool) {
	d.mu.Lock()
	d.fail[addr] = fail
	d.mu.Unlock()
}

func (d *fakeDialer) dial(ctx context.Context, network, addr string) (net.Conn, error) {
	d.mu.Lock()
	fail := d.fail[addr]
	d.mu.Unlock()
	if fail {
		return nil, errors.New("scripted failure")
	}
	a, b := net.Pipe()
	go func() {
		// Drain and discard so HTTP writes never block, then hang up.
		buf := make([]byte, 1024)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	return a, nil
}

type transition struct {
	target int
	down   bool
}

func collectTransitions() (func(int, bool), func() []transition) {
	var mu sync.Mutex
	var got []transition
	record := func(t int, down bool) {
		mu.Lock()
		got = append(got, transition{t, down})
		mu.Unlock()
	}
	snapshot := func() []transition {
		mu.Lock()
		defer mu.Unlock()
		return append([]transition(nil), got...)
	}
	return record, snapshot
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestProberFailNRiseM(t *testing.T) {
	d := &fakeDialer{fail: map[string]bool{}}
	record, snapshot := collectTransitions()
	p, err := New(Config{
		Targets:      []Target{{Addr: "10.0.0.1:80"}, {Addr: "10.0.0.2:80"}},
		Interval:     10 * time.Millisecond,
		Timeout:      5 * time.Millisecond,
		FailN:        3,
		RiseM:        2,
		Seed:         1,
		OnTransition: record,
		Dialer:       d.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Close()

	// Both healthy: no transitions even after many probes.
	waitFor(t, 2*time.Second, func() bool {
		st := p.Stats()
		return st[0].Probes >= 5 && st[1].Probes >= 5
	}, "probes not running")
	if got := snapshot(); len(got) != 0 {
		t.Fatalf("healthy targets produced transitions: %v", got)
	}

	// Kill target 0: down after exactly FailN consecutive failures.
	d.setFail("10.0.0.1:80", true)
	waitFor(t, 2*time.Second, func() bool { return p.Down(0) }, "target 0 never declared down")
	if p.Down(1) {
		t.Fatal("target 1 wrongly declared down")
	}
	st := p.Stats()
	if st[0].Failures < uint64(3) {
		t.Fatalf("down with only %d failures, want >= FailN=3", st[0].Failures)
	}

	// Revive: up after RiseM consecutive successes.
	d.setFail("10.0.0.1:80", false)
	waitFor(t, 2*time.Second, func() bool { return !p.Down(0) }, "target 0 never revived")

	got := snapshot()
	if len(got) != 2 || got[0] != (transition{0, true}) || got[1] != (transition{0, false}) {
		t.Fatalf("transitions = %v, want [{0 true} {0 false}]", got)
	}
	if tr := p.Stats()[0].Transitions; tr != 2 {
		t.Fatalf("transition count = %d, want 2", tr)
	}
}

func TestProberSingleBlipNoTransition(t *testing.T) {
	d := &fakeDialer{fail: map[string]bool{}}
	record, snapshot := collectTransitions()
	var mu sync.Mutex
	failuresLeft := 2 // fewer than FailN=3: hysteresis must absorb it
	dialer := func(ctx context.Context, network, addr string) (net.Conn, error) {
		mu.Lock()
		blip := failuresLeft > 0
		if blip {
			failuresLeft--
		}
		mu.Unlock()
		if blip {
			return nil, errors.New("blip")
		}
		return d.dial(ctx, network, addr)
	}
	p, err := New(Config{
		Targets:      []Target{{Addr: "10.0.0.1:80"}},
		Interval:     10 * time.Millisecond,
		FailN:        3,
		RiseM:        2,
		Seed:         1,
		OnTransition: record,
		Dialer:       dialer,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Close()
	waitFor(t, 2*time.Second, func() bool { return p.Stats()[0].Probes >= 6 }, "probes not running")
	if p.Down(0) {
		t.Fatal("two-failure blip (< FailN) flipped standing")
	}
	if got := snapshot(); len(got) != 0 {
		t.Fatalf("blip produced transitions: %v", got)
	}
}

func TestProberEmptyAddrSkipped(t *testing.T) {
	p, err := New(Config{
		Targets:  []Target{{Addr: ""}, {Addr: "10.0.0.2:80"}},
		Interval: 10 * time.Millisecond,
		Seed:     1,
		Dialer: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return nil, errors.New("always down")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Close()
	waitFor(t, 2*time.Second, func() bool { return p.Down(1) }, "probed target never down")
	if p.Down(0) {
		t.Fatal("unprobed slot reported down")
	}
	if st := p.Stats(); st[0].Probes != 0 {
		t.Fatalf("unprobed slot recorded %d probes", st[0].Probes)
	}
	// Out-of-range slots are up, not a panic.
	if p.Down(-1) || p.Down(99) {
		t.Fatal("out-of-range slot reported down")
	}
}

func TestProberRealTCPTarget(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	p, err := New(Config{
		Targets:  []Target{{Addr: ln.Addr().String()}},
		Interval: 20 * time.Millisecond,
		Timeout:  200 * time.Millisecond,
		FailN:    2,
		RiseM:    1,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Close()
	waitFor(t, 2*time.Second, func() bool { return p.Stats()[0].Probes >= 3 }, "probes not running")
	if p.Down(0) {
		t.Fatal("live listener declared down")
	}
	ln.Close()
	waitFor(t, 3*time.Second, func() bool { return p.Down(0) }, "closed listener never declared down")
}

func TestProberHTTPProbe(t *testing.T) {
	respond := func(ln net.Listener, status string) {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1024)
				c.SetReadDeadline(time.Now().Add(time.Second))
				c.Read(buf) //nolint:errcheck // shallow probe server
				c.Write([]byte("HTTP/1.1 " + status + "\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"))
			}(c)
		}
	}
	healthy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	go respond(healthy, "200 OK")
	sick, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sick.Close()
	go respond(sick, "503 Service Unavailable")

	p, err := New(Config{
		Targets: []Target{
			{Addr: healthy.Addr().String(), HTTPPath: "/healthz"},
			{Addr: sick.Addr().String(), HTTPPath: "/healthz"},
		},
		Interval: 20 * time.Millisecond,
		Timeout:  300 * time.Millisecond,
		FailN:    2,
		RiseM:    1,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Close()
	waitFor(t, 3*time.Second, func() bool { return p.Down(1) }, "503 target never declared down")
	if p.Down(0) {
		t.Fatal("200 target declared down")
	}
}

func TestCheckStatusLine(t *testing.T) {
	for _, ok := range []string{
		"HTTP/1.1 200 OK\r\n", "HTTP/1.0 204 No Content\n", "HTTP/1.1 301 Moved Permanently",
	} {
		if err := checkStatusLine(ok); err != nil {
			t.Errorf("checkStatusLine(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{
		"HTTP/1.1 500 Boom", "HTTP/1.1 404 Not Found", "HTTP/1.1 1xx", "garbage",
		"HTTP/1.1", "SMTP 200 OK", "HTTP/1.1 99 Short",
	} {
		if err := checkStatusLine(bad); err == nil {
			t.Errorf("checkStatusLine(%q) accepted", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no targets accepted")
	}
	if _, err := New(Config{Targets: []Target{{Addr: "no-port"}}}); err == nil {
		t.Fatal("addr without port accepted")
	}
	if _, err := New(Config{Targets: []Target{{Addr: "1.2.3.4:80", HTTPPath: "healthz"}}}); err == nil {
		t.Fatal("relative http path accepted")
	}
	p, err := New(Config{Targets: []Target{{Addr: "1.2.3.4:80"}}})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumTargets() != 1 {
		t.Fatalf("NumTargets = %d", p.NumTargets())
	}
	// Close before Start, and double Close, are safe.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p.Start() // after Close: no-op
}
