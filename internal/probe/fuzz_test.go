package probe

import "testing"

// FuzzParseSpec asserts the -probe flag parser never panics and that
// every accepted spec survives a String() round trip.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"tcp",
		"tcp,interval=2s,timeout=500ms,fail=3,rise=2,jitter=0.2",
		"http=/healthz",
		"http=/healthz,interval=5s,jitter=0",
		"tcp,fail=1,rise=1",
		"http=healthz",
		"tcp,interval=-1s",
		"tcp,jitter=1.5",
		"udp",
		"",
		"tcp,,",
		"tcp,fail=0",
		"tcp,bogus=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		if spec.Kind != "tcp" && spec.Kind != "http" {
			t.Fatalf("ParseSpec(%q) accepted kind %q", s, spec.Kind)
		}
		if spec.Kind == "http" && spec.HTTPPath == "" {
			t.Fatalf("ParseSpec(%q) accepted http kind without path", s)
		}
		if spec.Interval < 0 || spec.Timeout < 0 || spec.FailN < 0 || spec.RiseM < 0 {
			t.Fatalf("ParseSpec(%q) produced negative knob: %+v", s, spec)
		}
		if spec.Jitter != -1 && (spec.Jitter < 0 || spec.Jitter >= 1) {
			t.Fatalf("ParseSpec(%q) produced out-of-range jitter %v", s, spec.Jitter)
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("round trip of %q -> %q failed: %v", s, spec.String(), err)
		}
		if again != spec {
			t.Fatalf("round trip of %q changed spec: %+v -> %+v", s, spec, again)
		}
		// The spec must always produce a Config that New accepts for a
		// plausible target list.
		cfg := spec.Config([]string{"127.0.0.1:80"})
		if _, err := New(cfg); err != nil {
			t.Fatalf("spec %q produced unbuildable config: %v", s, err)
		}
	})
}
