package probe

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Spec is the parsed form of the dnslb-server -probe flag: the probe
// kind plus the tuning knobs shared by every target.
type Spec struct {
	Kind     string // "tcp" or "http"
	HTTPPath string // only for Kind == "http"

	Interval time.Duration // 0 = default
	Timeout  time.Duration
	Jitter   float64 // -1 = default (0 is a valid explicit value)
	FailN    int
	RiseM    int
}

// ParseSpec parses the compact probe specification used on the command
// line:
//
//	tcp
//	tcp,interval=2s,timeout=500ms,fail=3,rise=2,jitter=0.2
//	http=/healthz,interval=5s
//
// The first comma-separated element selects the probe kind: "tcp" for
// a plain connect probe, or "http=<path>" for a shallow GET expecting
// a 2xx/3xx status. The remaining elements are key=value options:
// interval, timeout (Go durations), fail, rise (positive integers),
// jitter (fraction in [0,1)). Unset options fall back to the package
// defaults.
func ParseSpec(s string) (Spec, error) {
	spec := Spec{Jitter: -1}
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, fmt.Errorf("probe: empty spec")
	}
	parts := strings.Split(s, ",")
	kind := strings.TrimSpace(parts[0])
	switch {
	case kind == "tcp":
		spec.Kind = "tcp"
	case strings.HasPrefix(kind, "http="):
		path := strings.TrimPrefix(kind, "http=")
		if !strings.HasPrefix(path, "/") {
			return Spec{}, fmt.Errorf("probe: http path %q must start with /", path)
		}
		spec.Kind = "http"
		spec.HTTPPath = path
	default:
		return Spec{}, fmt.Errorf("probe: unknown kind %q (want tcp or http=<path>)", kind)
	}
	for _, opt := range parts[1:] {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			return Spec{}, fmt.Errorf("probe: empty option in %q", s)
		}
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return Spec{}, fmt.Errorf("probe: option %q is not key=value", opt)
		}
		switch key {
		case "interval", "timeout":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Spec{}, fmt.Errorf("probe: %s=%q: %v", key, val, err)
			}
			if d <= 0 {
				return Spec{}, fmt.Errorf("probe: %s must be positive, got %v", key, d)
			}
			if key == "interval" {
				spec.Interval = d
			} else {
				spec.Timeout = d
			}
		case "fail", "rise":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return Spec{}, fmt.Errorf("probe: %s=%q: want positive integer", key, val)
			}
			if key == "fail" {
				spec.FailN = n
			} else {
				spec.RiseM = n
			}
		case "jitter":
			j, err := strconv.ParseFloat(val, 64)
			if err != nil || j < 0 || j >= 1 {
				return Spec{}, fmt.Errorf("probe: jitter=%q: want fraction in [0,1)", val)
			}
			spec.Jitter = j
		default:
			return Spec{}, fmt.Errorf("probe: unknown option %q", key)
		}
	}
	return spec, nil
}

// String renders the spec back into ParseSpec syntax.
func (sp Spec) String() string {
	var b strings.Builder
	if sp.Kind == "http" {
		fmt.Fprintf(&b, "http=%s", sp.HTTPPath)
	} else {
		b.WriteString("tcp")
	}
	if sp.Interval > 0 {
		fmt.Fprintf(&b, ",interval=%s", sp.Interval)
	}
	if sp.Timeout > 0 {
		fmt.Fprintf(&b, ",timeout=%s", sp.Timeout)
	}
	if sp.FailN > 0 {
		fmt.Fprintf(&b, ",fail=%d", sp.FailN)
	}
	if sp.RiseM > 0 {
		fmt.Fprintf(&b, ",rise=%d", sp.RiseM)
	}
	if sp.Jitter >= 0 {
		fmt.Fprintf(&b, ",jitter=%g", sp.Jitter)
	}
	return b.String()
}

// Config builds a probe Config for the given targets from the spec.
// Targets are service addresses; for an http spec each target carries
// the spec's path.
func (sp Spec) Config(addrs []string) Config {
	targets := make([]Target, len(addrs))
	for i, a := range addrs {
		targets[i] = Target{Addr: a}
		if sp.Kind == "http" {
			targets[i].HTTPPath = sp.HTTPPath
		}
	}
	jitter := sp.Jitter
	if jitter < 0 {
		jitter = DefaultJitter
	}
	return Config{
		Targets:  targets,
		Interval: sp.Interval,
		Timeout:  sp.Timeout,
		Jitter:   jitter,
		FailN:    sp.FailN,
		RiseM:    sp.RiseM,
	}
}
