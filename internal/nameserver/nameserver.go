// Package nameserver models the client-side name servers (NS) of the
// paper: each connected domain has a local NS that caches the Web
// site's name-to-address mapping for the TTL chosen by the site's DNS
// — or for its own minimum when it considers the proposed TTL too
// small (the "non-cooperative" behaviour studied in Figures 4 and 5).
package nameserver

import "fmt"

// Cache is one domain's name server cache for a single name (the Web
// site's URL). It is driven by virtual or wall-clock time supplied by
// the caller.
type Cache struct {
	minTTL float64

	server  int
	expire  float64
	valid   bool
	hits    uint64
	misses  uint64
	clamped uint64
}

// New creates a cache. minTTL is the lowest TTL this NS accepts: a
// proposed TTL below it is replaced by minTTL (0 models a fully
// cooperative NS that honours any TTL).
func New(minTTL float64) (*Cache, error) {
	if minTTL < 0 {
		return nil, fmt.Errorf("nameserver: negative minimum TTL %v", minTTL)
	}
	return &Cache{minTTL: minTTL}, nil
}

// MinTTL returns the cache's minimum accepted TTL.
func (c *Cache) MinTTL() float64 { return c.minTTL }

// Lookup returns the cached server if the mapping is still valid at
// time now. ok is false on a cache miss (expired or never stored); the
// caller must then ask the site's DNS and Store the answer.
func (c *Cache) Lookup(now float64) (server int, ok bool) {
	if c.valid && now < c.expire {
		c.hits++
		return c.server, true
	}
	c.misses++
	return 0, false
}

// Store caches the mapping decided by the DNS at time now and returns
// the TTL the NS actually applies: max(ttl, minTTL). Non-positive TTLs
// are also raised to the minimum (or dropped entirely when the NS has
// no minimum).
func (c *Cache) Store(now float64, server int, ttl float64) float64 {
	effective := ttl
	if effective < c.minTTL {
		effective = c.minTTL
		c.clamped++
	}
	if effective <= 0 {
		// A cooperative NS given TTL <= 0 does not cache at all.
		c.valid = false
		return 0
	}
	c.server = server
	c.expire = now + effective
	c.valid = true
	return effective
}

// Invalidate drops the cached mapping.
func (c *Cache) Invalidate() { c.valid = false }

// Expiry returns the virtual time the current mapping lapses; it is
// meaningful only while a Lookup would succeed.
func (c *Cache) Expiry() float64 { return c.expire }

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits    uint64 // lookups answered from cache
	Misses  uint64 // lookups forwarded to the site's DNS
	Clamped uint64 // stores whose TTL was raised to the NS minimum
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, Clamped: c.clamped}
}
