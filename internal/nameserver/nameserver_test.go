package nameserver

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("negative minTTL should error")
	}
	c, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	if c.MinTTL() != 0 {
		t.Errorf("MinTTL = %v", c.MinTTL())
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(0); ok {
		t.Fatal("empty cache should miss")
	}
	got := c.Store(0, 3, 240)
	if got != 240 {
		t.Errorf("effective TTL = %v, want 240", got)
	}
	server, ok := c.Lookup(100)
	if !ok || server != 3 {
		t.Errorf("Lookup = (%d,%v), want (3,true)", server, ok)
	}
	// At exactly the expiry instant the mapping is stale.
	if _, ok := c.Lookup(240); ok {
		t.Error("mapping should expire at now+TTL")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses", s)
	}
}

func TestNonCooperativeClamping(t *testing.T) {
	c, err := New(120)
	if err != nil {
		t.Fatal(err)
	}
	// Proposed 40 s is below the NS minimum: clamped to 120.
	if got := c.Store(0, 1, 40); got != 120 {
		t.Errorf("effective TTL = %v, want clamped 120", got)
	}
	if _, ok := c.Lookup(119); !ok {
		t.Error("mapping should still be valid before the clamped expiry")
	}
	if _, ok := c.Lookup(121); ok {
		t.Error("mapping should expire after the clamped TTL")
	}
	// Proposed 300 s is above the minimum: honoured.
	if got := c.Store(200, 2, 300); got != 300 {
		t.Errorf("effective TTL = %v, want 300", got)
	}
	if c.Stats().Clamped != 1 {
		t.Errorf("Clamped = %d, want 1", c.Stats().Clamped)
	}
}

func TestZeroTTLNotCached(t *testing.T) {
	c, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Store(0, 1, 0); got != 0 {
		t.Errorf("effective TTL = %v, want 0", got)
	}
	if _, ok := c.Lookup(0); ok {
		t.Error("zero-TTL mapping must not be cached by a cooperative NS")
	}
}

func TestInvalidate(t *testing.T) {
	c, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	c.Store(0, 5, 1000)
	c.Invalidate()
	if _, ok := c.Lookup(1); ok {
		t.Error("invalidated mapping should miss")
	}
}

func TestExpiry(t *testing.T) {
	c, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	c.Store(10, 2, 240)
	if got := c.Expiry(); got != 250 {
		t.Errorf("Expiry = %v, want 250", got)
	}
}

func TestStoreOverwrites(t *testing.T) {
	c, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	c.Store(0, 1, 100)
	c.Store(50, 2, 100)
	server, ok := c.Lookup(120)
	if !ok || server != 2 {
		t.Errorf("Lookup = (%d,%v), want the newer mapping (2,true)", server, ok)
	}
}

func TestEffectiveTTLNeverBelowMinProperty(t *testing.T) {
	f := func(minRaw, ttlRaw uint16) bool {
		min := float64(minRaw % 600)
		ttl := float64(ttlRaw%1200) + 1
		c, err := New(min)
		if err != nil {
			return false
		}
		eff := c.Store(0, 0, ttl)
		if eff < min {
			return false
		}
		if ttl >= min && eff != ttl {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
