package backend

import (
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"testing"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/dnsserver"
	"dnslb/internal/simcore"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 0, Domains: 1}); err == nil {
		t.Error("zero capacity should error")
	}
	if _, err := New(Config{Capacity: 10, Domains: 0}); err == nil {
		t.Error("zero domains should error")
	}
	if _, err := New(Config{Capacity: 10, Domains: 1, AlarmThreshold: 2}); err == nil {
		t.Error("bad threshold should error")
	}
}

func startBackend(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServesAndCounts(t *testing.T) {
	s := startBackend(t, Config{Capacity: 1000, Domains: 4, Simulate: true})
	base := fmt.Sprintf("http://%s", s.Addr())
	body := get(t, base+"/?hits=5&domain=2")
	if body != "served 5 hit(s) for domain 2\n" {
		t.Errorf("body = %q", body)
	}
	get(t, base+"/") // defaults: 1 hit, domain 0
	if got := s.TotalHits(); got != 6 {
		t.Errorf("TotalHits = %d, want 6", got)
	}
}

func TestHeadersOverrideDefaults(t *testing.T) {
	s := startBackend(t, Config{Capacity: 1000, Domains: 4, Simulate: true})
	req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("http://%s/", s.Addr()), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Hits", "7")
	req.Header.Set("X-Domain", "3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if string(body) != "served 7 hit(s) for domain 3\n" {
		t.Errorf("body = %q", body)
	}
}

func TestQueueingLatency(t *testing.T) {
	// Capacity 100 hits/s, a 20-hit request = 200 ms service time; with
	// Simulate off the response must take at least that long.
	s := startBackend(t, Config{Capacity: 100, Domains: 1})
	start := time.Now()
	get(t, fmt.Sprintf("http://%s/?hits=20", s.Addr()))
	if elapsed := time.Since(start); elapsed < 180*time.Millisecond {
		t.Errorf("request returned after %v, want >= ~200ms of service time", elapsed)
	}
}

func TestUtilizationTracksLoad(t *testing.T) {
	s := startBackend(t, Config{Capacity: 100, Domains: 1, Simulate: true,
		UtilizationInterval: time.Hour}) // agent stays out of the way
	// 30 hits = 300 ms of work.
	get(t, fmt.Sprintf("http://%s/?hits=30", s.Addr()))
	time.Sleep(150 * time.Millisecond)
	u := s.Utilization()
	if u < 0.5 || u > 1 {
		t.Errorf("mid-burst utilization = %v, want high", u)
	}
	time.Sleep(400 * time.Millisecond)
	u = s.Utilization()
	if u > 0.8 {
		t.Errorf("post-drain utilization = %v, want decaying", u)
	}
}

// startDNS builds a DNS server + report listener for integration.
func startDNS(t *testing.T) (*dnsserver.Server, *dnsserver.ReportListener) {
	t.Helper()
	cluster, err := core.NewCluster([]float64{100, 50})
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  "PRR2-TTL/K",
		State: state,
		Rand:  simcore.NewStream(1, "backend-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dnsserver.New(dnsserver.Config{
		Zone: "www.b.test",
		ServerAddrs: []netip.Addr{
			netip.MustParseAddr("10.7.0.1"),
			netip.MustParseAddr("10.7.0.2"),
		},
		Policy: policy,
		Addr:   "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	rl, err := dnsserver.NewReportListener(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rl.Close() })
	return srv, rl
}

func TestAgentReportsAlarmToDNS(t *testing.T) {
	srv, rl := startDNS(t)
	s := startBackend(t, Config{
		Capacity:            50,
		Domains:             4,
		Simulate:            true,
		ServerIndex:         1,
		ReportAddr:          rl.Addr().String(),
		UtilizationInterval: 50 * time.Millisecond,
		AlarmThreshold:      0.5,
	})
	// Saturate: 1000 hits = 20 s of work at capacity 50.
	get(t, fmt.Sprintf("http://%s/?hits=1000&domain=1", s.Addr()))

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Alarmed(1) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !srv.Alarmed(1) {
		t.Fatal("backend alarm never reached the DNS scheduler state")
	}
}

func TestAgentFeedsHiddenLoadEstimates(t *testing.T) {
	srv, rl := startDNS(t)
	s := startBackend(t, Config{
		Capacity:            10000,
		Domains:             4,
		Simulate:            true,
		ReportAddr:          rl.Addr().String(),
		UtilizationInterval: 50 * time.Millisecond,
	})
	// Domain 2 sends the bulk of the traffic.
	base := fmt.Sprintf("http://%s", s.Addr())
	for i := 0; i < 30; i++ {
		get(t, base+"/?hits=100&domain=2")
	}
	get(t, base+"/?hits=10&domain=0")

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if srv.DomainWeight(2) > 0.5 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if w := srv.DomainWeight(2); w <= 0.5 {
		t.Fatalf("estimated weight of domain 2 = %v, want dominant", w)
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := startBackend(t, Config{Capacity: 100, Domains: 1, Simulate: true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseBeforeStart(t *testing.T) {
	s, err := New(Config{Capacity: 100, Domains: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close before Start should be a no-op, got %v", err)
	}
}
