package backend

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/dnsserver"
	"dnslb/internal/simcore"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 0, Domains: 1}); err == nil {
		t.Error("zero capacity should error")
	}
	if _, err := New(Config{Capacity: 10, Domains: 0}); err == nil {
		t.Error("zero domains should error")
	}
	if _, err := New(Config{Capacity: 10, Domains: 1, AlarmThreshold: 2}); err == nil {
		t.Error("bad threshold should error")
	}
}

func startBackend(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServesAndCounts(t *testing.T) {
	s := startBackend(t, Config{Capacity: 1000, Domains: 4, Simulate: true})
	base := fmt.Sprintf("http://%s", s.Addr())
	body := get(t, base+"/?hits=5&domain=2")
	if body != "served 5 hit(s) for domain 2\n" {
		t.Errorf("body = %q", body)
	}
	get(t, base+"/") // defaults: 1 hit, domain 0
	if got := s.TotalHits(); got != 6 {
		t.Errorf("TotalHits = %d, want 6", got)
	}
}

func TestHeadersOverrideDefaults(t *testing.T) {
	s := startBackend(t, Config{Capacity: 1000, Domains: 4, Simulate: true})
	req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("http://%s/", s.Addr()), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Hits", "7")
	req.Header.Set("X-Domain", "3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if string(body) != "served 7 hit(s) for domain 3\n" {
		t.Errorf("body = %q", body)
	}
}

func TestQueueingLatency(t *testing.T) {
	// Capacity 100 hits/s, a 20-hit request = 200 ms service time; with
	// Simulate off the response must take at least that long.
	s := startBackend(t, Config{Capacity: 100, Domains: 1})
	start := time.Now()
	get(t, fmt.Sprintf("http://%s/?hits=20", s.Addr()))
	if elapsed := time.Since(start); elapsed < 180*time.Millisecond {
		t.Errorf("request returned after %v, want >= ~200ms of service time", elapsed)
	}
}

func TestUtilizationTracksLoad(t *testing.T) {
	s := startBackend(t, Config{Capacity: 100, Domains: 1, Simulate: true,
		UtilizationInterval: time.Hour}) // agent stays out of the way
	// 30 hits = 300 ms of work.
	get(t, fmt.Sprintf("http://%s/?hits=30", s.Addr()))
	time.Sleep(150 * time.Millisecond)
	u := s.Utilization()
	if u < 0.5 || u > 1 {
		t.Errorf("mid-burst utilization = %v, want high", u)
	}
	time.Sleep(400 * time.Millisecond)
	u = s.Utilization()
	if u > 0.8 {
		t.Errorf("post-drain utilization = %v, want decaying", u)
	}
}

// startDNS builds a DNS server + report listener for integration.
func startDNS(t *testing.T) (*dnsserver.Server, *dnsserver.ReportListener) {
	srv, rl, _ := startDNSState(t)
	return srv, rl
}

// startDNSState also exposes the scheduler state behind the DNS.
func startDNSState(t *testing.T) (*dnsserver.Server, *dnsserver.ReportListener, *core.State) {
	t.Helper()
	cluster, err := core.NewCluster([]float64{100, 50})
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  "PRR2-TTL/K",
		State: state,
		Rand:  simcore.NewStream(1, "backend-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dnsserver.New(dnsserver.Config{
		Zone: "www.b.test",
		ServerAddrs: []netip.Addr{
			netip.MustParseAddr("10.7.0.1"),
			netip.MustParseAddr("10.7.0.2"),
		},
		Policy: policy,
		Addr:   "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	rl, err := dnsserver.NewReportListener(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rl.Close() })
	return srv, rl, state
}

func TestAgentReportsAlarmToDNS(t *testing.T) {
	srv, rl := startDNS(t)
	s := startBackend(t, Config{
		Capacity:            50,
		Domains:             4,
		Simulate:            true,
		ServerIndex:         1,
		ReportAddr:          rl.Addr().String(),
		UtilizationInterval: 50 * time.Millisecond,
		AlarmThreshold:      0.5,
	})
	// Saturate: 1000 hits = 20 s of work at capacity 50.
	get(t, fmt.Sprintf("http://%s/?hits=1000&domain=1", s.Addr()))

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Alarmed(1) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !srv.Alarmed(1) {
		t.Fatal("backend alarm never reached the DNS scheduler state")
	}
}

func TestAgentFeedsHiddenLoadEstimates(t *testing.T) {
	srv, rl := startDNS(t)
	s := startBackend(t, Config{
		Capacity:            10000,
		Domains:             4,
		Simulate:            true,
		ReportAddr:          rl.Addr().String(),
		UtilizationInterval: 50 * time.Millisecond,
	})
	// Domain 2 sends the bulk of the traffic.
	base := fmt.Sprintf("http://%s", s.Addr())
	for i := 0; i < 30; i++ {
		get(t, base+"/?hits=100&domain=2")
	}
	get(t, base+"/?hits=10&domain=0")

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if srv.DomainWeight(2) > 0.5 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if w := srv.DomainWeight(2); w <= 0.5 {
		t.Fatalf("estimated weight of domain 2 = %v, want dominant", w)
	}
}

func TestBackoffValidation(t *testing.T) {
	_, err := New(Config{Capacity: 10, Domains: 1,
		ReconnectBackoffMin: time.Second, ReconnectBackoffMax: time.Millisecond})
	if err == nil {
		t.Error("backoff max below min should error")
	}
}

func TestReportBackoffGatesDialing(t *testing.T) {
	// Point the agent at a dead address: the first report fails with a
	// dial error, and the next one is refused locally while the backoff
	// window is open — no second dial attempt.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr().String()
	_ = dead.Close()

	s, err := New(Config{Capacity: 10, Domains: 1, ReportAddr: addr,
		ReconnectBackoffMin: time.Hour, ReconnectBackoffMax: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.report([]string{"ROLL 8"}); err == nil {
		t.Fatal("report to a dead address should fail")
	}
	if s.nextDial.IsZero() {
		t.Fatal("failed dial did not arm the backoff")
	}
	err = s.report([]string{"ROLL 8"})
	if err == nil || !strings.Contains(err.Error(), "next dial") {
		t.Errorf("in-backoff report error = %v, want local backoff refusal", err)
	}
}

func TestBackoffDoublesAndJitters(t *testing.T) {
	s, err := New(Config{Capacity: 10, Domains: 1,
		ReconnectBackoffMin: 100 * time.Millisecond, ReconnectBackoffMax: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{100, 200, 400, 400, 400} // ms, capped at max
	for i, w := range want {
		s.bumpBackoffLocked()
		if s.dialBackoff != w*time.Millisecond {
			t.Fatalf("bump %d: backoff = %v, want %v", i, s.dialBackoff, w*time.Millisecond)
		}
		delay := time.Until(s.nextDial)
		lo := time.Duration(float64(s.dialBackoff) * 0.4) // slack for elapsed time
		hi := time.Duration(float64(s.dialBackoff) * 1.5)
		if delay < lo || delay > hi {
			t.Fatalf("bump %d: jittered delay %v outside [%v,%v]", i, delay, lo, hi)
		}
	}
}

func TestAgentSurvivesReportOutage(t *testing.T) {
	// Acceptance path for the live failure model: kill the report
	// socket, watch the liveness monitor exclude the backend, restart
	// the socket, and watch the agent's backoff redial re-admit it —
	// including the alarm transition that happened while disconnected.
	srv, rl := startDNS(t)
	m, err := dnsserver.NewLivenessMonitor(srv, 40*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	addr := rl.Addr().String()
	s := startBackend(t, Config{
		Capacity:            50,
		Domains:             4,
		Simulate:            true,
		ServerIndex:         1,
		ReportAddr:          addr,
		UtilizationInterval: 25 * time.Millisecond,
		AlarmThreshold:      0.5,
		ReconnectBackoffMin: 10 * time.Millisecond,
		ReconnectBackoffMax: 40 * time.Millisecond,
	})

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatal(what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	waitFor("backend never marked live by its own heartbeats", func() bool {
		return !srv.Down(1)
	})
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor("silent backend never excluded after report socket died", func() bool {
		return srv.Down(1)
	})

	// Alarm flips while the feedback channel is down: that transition
	// line is lost with the cycle, so only the reconnect resync can
	// deliver it.
	get(t, fmt.Sprintf("http://%s/?hits=10000&domain=1", s.Addr()))
	waitFor("backend never alarmed locally", s.Alarmed)

	rl2, err := dnsserver.NewReportListener(srv, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rl2.Close() })
	waitFor("backend never re-admitted after report socket restart", func() bool {
		return !srv.Down(1)
	})
	waitFor("alarm state not resynced after reconnect", func() bool {
		return srv.Alarmed(1)
	})
}

func TestSelfRegistrationAndRetire(t *testing.T) {
	_, rl, state := startDNSState(t)

	s := startBackend(t, Config{
		Capacity:            500,
		Domains:             4,
		Simulate:            true,
		ReportAddr:          rl.Addr().String(),
		AdvertiseAddr:       "10.7.0.50",
		RetireOnClose:       true,
		UtilizationInterval: 25 * time.Millisecond,
	})
	if got := s.ServerIndex(); got != -1 {
		t.Fatalf("pre-join ServerIndex = %d, want -1", got)
	}

	deadline := time.Now().Add(3 * time.Second)
	for s.ServerIndex() < 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	idx := s.ServerIndex()
	if idx != 2 {
		t.Fatalf("joined index = %d, want fresh slot 2", idx)
	}
	if !state.Member(idx) {
		t.Fatal("joined backend not a cluster member")
	}

	// Graceful retirement: Close sends DRAIN, the DNS starts draining.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !state.Draining(idx) && state.Member(idx) {
		t.Error("closed backend neither draining nor removed")
	}
}

func TestAdvertiseValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 10, Domains: 1, AdvertiseAddr: "not-an-ip"}); err == nil {
		t.Error("bad advertise address should error")
	}
	if _, err := New(Config{Capacity: 10, Domains: 1, AdvertiseAddr: "2001:db8::1"}); err == nil {
		t.Error("IPv6 advertise address should error")
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := startBackend(t, Config{Capacity: 100, Domains: 1, Simulate: true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseBeforeStart(t *testing.T) {
	s, err := New(Config{Capacity: 100, Domains: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close before Start should be a no-op, got %v", err)
	}
}

func TestSuccessfulWriteResetsBackoff(t *testing.T) {
	// A successful write on the established connection — not just a
	// successful reconnect — must clear the dial backoff, so the next
	// outage starts the ladder from the minimum instead of inheriting
	// a stale ceiling.
	_, rl := startDNS(t)
	s, err := New(Config{Capacity: 10, Domains: 1, ReportAddr: rl.Addr().String(),
		ReconnectBackoffMin: 10 * time.Millisecond, ReconnectBackoffMax: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.report([]string{"ROLL 8"}); err != nil {
		t.Fatal(err) // establishes the persistent connection
	}
	s.reportMu.Lock()
	if s.reportC == nil {
		s.reportMu.Unlock()
		t.Fatal("report left no persistent connection")
	}
	// Simulate an old outage whose backoff never got cleared.
	s.dialBackoff = time.Hour
	s.nextDial = time.Time{}
	s.reportMu.Unlock()

	if err := s.report([]string{"ROLL 8"}); err != nil {
		t.Fatal(err) // write path only: connection already up, no dial
	}
	s.reportMu.Lock()
	defer s.reportMu.Unlock()
	if s.dialBackoff != 0 || !s.nextDial.IsZero() {
		t.Errorf("successful write left backoff %v / nextDial %v, want cleared",
			s.dialBackoff, s.nextDial)
	}
}
