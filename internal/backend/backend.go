// Package backend provides a capacity-limited HTTP Web server with a
// self-reporting load agent: the real-network counterpart of the
// simulator's webserver model. Requests consume service time from a
// single work queue sized by the server's capacity in hits/second;
// the agent measures busy-time utilization per interval and pushes
// ALARM / HITS / ROLL lines to the DNS load-report socket, closing the
// paper's asynchronous feedback loop over real sockets.
//
// With AdvertiseAddr set, the backend also manages its own cluster
// membership: it announces itself to the DNS with a JOIN line every
// time the report socket connects (learning its slot index from the
// reply), and with RetireOnClose it sends a DRAIN on shutdown so the
// DNS drains it gracefully instead of waiting for the liveness timeout.
package backend

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dnslb/internal/logging"
	"dnslb/internal/metrics"
)

// Config configures a backend server.
type Config struct {
	// Capacity is the service capacity in hits per second.
	Capacity float64
	// Addr is the HTTP listen address, e.g. "127.0.0.1:0".
	Addr string
	// ReportAddr is the DNS server's load-report socket. Empty
	// disables reporting (the agent still measures locally).
	ReportAddr string
	// ServerIndex is this server's index in the DNS scheduler's
	// cluster, used in ALARM lines. Ignored when AdvertiseAddr is set —
	// the index is then assigned by the DNS in the JOIN reply.
	ServerIndex int
	// AdvertiseAddr optionally enables self-registration: the backend's
	// own Web-facing IPv4 address, announced with a JOIN line each time
	// the report socket connects (idempotent — a reconnect or DNS
	// restart just re-registers the same address). Until the first JOIN
	// succeeds, the agent has no slot index and skips index-bearing
	// lines (ALIVE, ALARM); HITS/ROLL still flow.
	AdvertiseAddr string
	// RetireOnClose sends a DRAIN for this backend's slot on Close, so
	// the DNS starts a graceful drain instead of waiting out the
	// liveness timeout. Best effort: a dead report socket just logs.
	RetireOnClose bool
	// Domains is the number of connected domains for per-domain hit
	// accounting (HITS lines).
	Domains int
	// UtilizationInterval is the measurement/report period
	// (default 8 s, the paper's utilization interval).
	UtilizationInterval time.Duration
	// AlarmThreshold is the utilization θ that raises an alarm
	// (default 0.9).
	AlarmThreshold float64
	// Simulate makes request handling return immediately instead of
	// sleeping for the queued service time. Utilization accounting is
	// identical; only the client-visible latency differs. Useful for
	// fast demos and tests.
	Simulate bool
	// ReconnectBackoffMin/Max bound the exponential backoff between
	// dial attempts when the report socket is unreachable (defaults
	// 500 ms and 30 s). Each failed dial doubles the delay up to Max,
	// with a 0.5–1.5x jitter factor so a restarted DNS server is not
	// hit by every backend at once.
	ReconnectBackoffMin time.Duration
	ReconnectBackoffMax time.Duration
	// Logger receives structured agent diagnostics; nil discards.
	Logger *slog.Logger
	// Metrics optionally registers the agent's observability series
	// (reports sent/failed, redial backoffs, alarm resyncs, live
	// utilization) on the given registry. Nil disables instrumentation.
	Metrics *metrics.Registry
}

// Server is one capacity-limited Web server.
//
// Each request carries its weight in hits via the X-Hits header or the
// ?hits= query parameter (default 1) and its source domain via the
// X-Domain header or ?domain= (default 0). A request of h hits
// occupies the server for h/Capacity seconds of queue time.
type Server struct {
	cfg Config

	mu         sync.Mutex
	busyUntil  time.Time
	creditTo   time.Time
	credited   time.Duration // cumulative busy time
	winStart   time.Time
	winCredit  time.Duration
	domainHits []float64
	totalHits  uint64
	alarmed    bool

	// idx is the slot index used in index-bearing report lines: the
	// configured ServerIndex, or (with AdvertiseAddr) the index the DNS
	// assigned in the last JOIN reply; -1 until the first JOIN succeeds.
	idx atomic.Int64

	httpSrv  *http.Server
	listener net.Listener
	stop     chan struct{}
	done     chan struct{}
	logger   *slog.Logger

	reportMu    sync.Mutex
	reportC     net.Conn
	dialBackoff time.Duration
	nextDial    time.Time

	metrics *agentMetrics // nil when uninstrumented
}

// agentMetrics are the report agent's series (see DESIGN.md §10).
type agentMetrics struct {
	reportsOK  *metrics.Counter
	reportsErr *metrics.Counter
	redials    *metrics.Counter
	resyncs    *metrics.Counter
}

// New creates a backend server; call Start.
func New(cfg Config) (*Server, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("backend: capacity %v must be positive", cfg.Capacity)
	}
	if cfg.Domains <= 0 {
		return nil, errors.New("backend: Domains must be positive")
	}
	if cfg.UtilizationInterval <= 0 {
		cfg.UtilizationInterval = 8 * time.Second
	}
	if cfg.AlarmThreshold == 0 {
		cfg.AlarmThreshold = 0.9
	}
	if cfg.AlarmThreshold < 0 || cfg.AlarmThreshold > 1 {
		return nil, fmt.Errorf("backend: alarm threshold %v out of [0,1]", cfg.AlarmThreshold)
	}
	if cfg.ReconnectBackoffMin <= 0 {
		cfg.ReconnectBackoffMin = 500 * time.Millisecond
	}
	if cfg.ReconnectBackoffMax <= 0 {
		cfg.ReconnectBackoffMax = 30 * time.Second
	}
	if cfg.ReconnectBackoffMax < cfg.ReconnectBackoffMin {
		return nil, fmt.Errorf("backend: reconnect backoff max %v below min %v",
			cfg.ReconnectBackoffMax, cfg.ReconnectBackoffMin)
	}
	if cfg.AdvertiseAddr != "" {
		a, err := netip.ParseAddr(cfg.AdvertiseAddr)
		if err != nil || !a.Is4() {
			return nil, fmt.Errorf("backend: advertise address %q must be a literal IPv4 address", cfg.AdvertiseAddr)
		}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = logging.Discard()
	}
	s := &Server{
		cfg:        cfg,
		domainHits: make([]float64, cfg.Domains),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		logger:     logger,
	}
	if cfg.AdvertiseAddr != "" {
		s.idx.Store(-1)
	} else {
		s.idx.Store(int64(cfg.ServerIndex))
	}
	if reg := cfg.Metrics; reg != nil {
		s.metrics = &agentMetrics{
			reportsOK: reg.NewCounter("dnslb_backend_reports_total",
				"Report cycles by result.", metrics.Labels{"status", "ok"}),
			reportsErr: reg.NewCounter("dnslb_backend_reports_total",
				"Report cycles by result.", metrics.Labels{"status", "error"}),
			redials: reg.NewCounter("dnslb_backend_report_redials_total",
				"Report-socket dial failures and send failures (each schedules a backoff retry).", nil),
			resyncs: reg.NewCounter("dnslb_backend_report_resyncs_total",
				"Alarm-state resyncs prepended after the report socket reconnected.", nil),
		}
		reg.NewGaugeFunc("dnslb_backend_utilization",
			"Busy fraction of the current measurement window.", nil, s.Utilization)
		reg.NewGaugeFunc("dnslb_backend_alarmed",
			"1 while the last closed window exceeded the alarm threshold.", nil,
			func() float64 {
				if s.Alarmed() {
					return 1
				}
				return 0
			})
		reg.NewCounterFunc("dnslb_backend_hits_total",
			"Hits served since start.", nil, s.TotalHits)
	}
	return s, nil
}

// Start binds the HTTP listener and launches the reporting agent.
func (s *Server) Start() error {
	addr := s.cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("backend: listen: %w", err)
	}
	s.listener = ln
	now := time.Now()
	s.mu.Lock()
	s.busyUntil, s.creditTo, s.winStart = now, now, now
	s.mu.Unlock()

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handle)
	s.httpSrv = &http.Server{Handler: mux}
	go func() { _ = s.httpSrv.Serve(ln) }()
	go s.agentLoop()
	return nil
}

// Addr returns the bound address (valid after Start).
func (s *Server) Addr() net.Addr { return s.listener.Addr() }

// Close stops the server and the agent. With RetireOnClose, a DRAIN
// for this backend's slot is sent first (best effort), so the DNS
// drains the server gracefully. Closing a server that was never
// started is a no-op.
func (s *Server) Close() error {
	select {
	case <-s.stop:
		return nil
	default:
	}
	close(s.stop)
	if s.httpSrv == nil {
		return nil
	}
	err := s.httpSrv.Close()
	<-s.done
	if s.cfg.RetireOnClose && s.cfg.ReportAddr != "" {
		s.retire()
	}
	s.reportMu.Lock()
	if s.reportC != nil {
		_ = s.reportC.Close()
		s.reportC = nil
	}
	s.reportMu.Unlock()
	return err
}

// ServerIndex returns the slot index this backend reports under: the
// configured index, or the one assigned by the DNS when AdvertiseAddr
// is set (-1 before the first successful JOIN).
func (s *Server) ServerIndex() int { return int(s.idx.Load()) }

// retire asks the DNS to drain this backend's slot, reusing the live
// report connection or dialing one last time. Failures only log: the
// liveness monitor is the fallback when the graceful path is gone.
func (s *Server) retire() {
	idx := s.ServerIndex()
	if idx < 0 {
		return // never joined; nothing to drain
	}
	s.reportMu.Lock()
	defer s.reportMu.Unlock()
	conn := s.reportC
	if conn == nil {
		c, err := net.DialTimeout("tcp", s.cfg.ReportAddr, 2*time.Second)
		if err != nil {
			s.logger.Warn("retire dial failed; relying on liveness timeout", "err", err, "server", idx)
			return
		}
		s.reportC = c
		conn = c
	}
	if err := sendLines(conn, []string{fmt.Sprintf("DRAIN %d", idx)}); err != nil {
		s.logger.Warn("retire failed; relying on liveness timeout", "err", err, "server", idx)
		return
	}
	s.logger.Info("retired from DNS membership", "server", idx)
}

// handle serves one request, charging its service time to the queue.
func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	hits := intParam(r, "X-Hits", "hits", 1)
	if hits < 1 {
		hits = 1
	}
	domain := intParam(r, "X-Domain", "domain", 0)
	service := time.Duration(float64(hits) / s.cfg.Capacity * float64(time.Second))

	now := time.Now()
	s.mu.Lock()
	s.advanceLocked(now)
	if s.busyUntil.Before(now) {
		s.busyUntil = now
	}
	s.busyUntil = s.busyUntil.Add(service)
	finish := s.busyUntil
	s.totalHits += uint64(hits)
	if domain >= 0 && domain < len(s.domainHits) {
		s.domainHits[domain] += float64(hits)
	}
	s.mu.Unlock()

	if !s.cfg.Simulate {
		// The response leaves when the queued work completes, so
		// clients observe real queueing latency.
		if wait := time.Until(finish); wait > 0 {
			select {
			case <-time.After(wait):
			case <-s.stop:
			}
		}
	}
	w.Header().Set("X-Capacity", strconv.FormatFloat(s.cfg.Capacity, 'f', -1, 64))
	fmt.Fprintf(w, "served %d hit(s) for domain %d\n", hits, domain)
}

func intParam(r *http.Request, header, query string, def int) int {
	if v := r.Header.Get(header); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	if v := r.URL.Query().Get(query); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// advanceLocked credits busy time up to now; callers hold mu.
func (s *Server) advanceLocked(now time.Time) {
	if !now.After(s.creditTo) {
		return
	}
	busyEnd := s.busyUntil
	if busyEnd.After(now) {
		busyEnd = now
	}
	if busyEnd.After(s.creditTo) {
		s.credited += busyEnd.Sub(s.creditTo)
	}
	s.creditTo = now
}

// Utilization returns the busy fraction since the last agent window
// closed (a live reading, not a closed window).
func (s *Server) Utilization() float64 {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(now)
	window := now.Sub(s.winStart)
	if window <= 0 {
		return 0
	}
	u := float64(s.credited-s.winCredit) / float64(window)
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return u
}

// TotalHits returns the hits served since Start.
func (s *Server) TotalHits() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalHits
}

// Alarmed reports whether the last closed window exceeded θ.
func (s *Server) Alarmed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alarmed
}

// closeWindow closes one utilization window and returns the busy
// fraction, per-domain hits, and whether the alarm state flipped.
func (s *Server) closeWindow(now time.Time) (util float64, hits []float64, flipped bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(now)
	window := now.Sub(s.winStart)
	if window > 0 {
		util = float64(s.credited-s.winCredit) / float64(window)
	}
	if util > 1 {
		util = 1
	}
	if util < 0 {
		util = 0
	}
	s.winStart = now
	s.winCredit = s.credited
	hits = make([]float64, len(s.domainHits))
	copy(hits, s.domainHits)
	for i := range s.domainHits {
		s.domainHits[i] = 0
	}
	over := util > s.cfg.AlarmThreshold
	if over != s.alarmed {
		s.alarmed = over
		flipped = true
	}
	return util, hits, flipped
}

// agentLoop measures utilization every interval and pushes reports.
func (s *Server) agentLoop() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.UtilizationInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-ticker.C:
			_, hits, flipped := s.closeWindow(now)
			if s.cfg.ReportAddr == "" {
				continue
			}
			// Every cycle opens with a heartbeat so the DNS liveness
			// monitor sees lightly loaded backends too. Before the first
			// JOIN assigns an index, the index-bearing lines are skipped
			// (the connect-time JOIN itself proves liveness, and the
			// reconnect resync delivers the current alarm state).
			var lines []string
			if idx := s.ServerIndex(); idx >= 0 {
				lines = append(lines, fmt.Sprintf("ALIVE %d", idx))
				if flipped {
					flag := 0
					if s.Alarmed() {
						flag = 1
					}
					lines = append(lines, fmt.Sprintf("ALARM %d %d", idx, flag))
				}
			}
			for d, h := range hits {
				if h > 0 {
					lines = append(lines, fmt.Sprintf("HITS %d %g", d, h))
				}
			}
			lines = append(lines, fmt.Sprintf("ROLL %g", s.cfg.UtilizationInterval.Seconds()))
			if err := s.report(lines); err != nil {
				if s.metrics != nil {
					s.metrics.reportsErr.Inc()
				}
				s.logger.Warn("report failed", "err", err, "server", s.ServerIndex())
			} else if s.metrics != nil {
				s.metrics.reportsOK.Inc()
			}
		}
	}
}

// report sends lines over a persistent connection to the report
// socket. A broken connection is redialed under bounded exponential
// backoff with jitter: the cycle's report is lost while the socket is
// down (matching the lossy feedback channel the paper assumes), but
// the agent keeps trying and resynchronizes once the DNS side is back.
func (s *Server) report(lines []string) error {
	s.reportMu.Lock()
	defer s.reportMu.Unlock()
	for attempt := 0; attempt < 2; attempt++ {
		if s.reportC == nil {
			if wait := time.Until(s.nextDial); wait > 0 {
				return fmt.Errorf("backend: report socket down, next dial in %v", wait.Round(time.Millisecond))
			}
			conn, err := net.DialTimeout("tcp", s.cfg.ReportAddr, 2*time.Second)
			if err != nil {
				s.bumpBackoffLocked()
				return err
			}
			// Self-registration rides every (re)connect: idempotent on
			// the DNS side, it re-admits this backend after a drain or a
			// DNS restart and keeps the slot index current.
			if s.cfg.AdvertiseAddr != "" {
				idx, err := joinOver(conn, s.cfg.AdvertiseAddr, s.cfg.Capacity)
				if err != nil {
					_ = conn.Close()
					s.bumpBackoffLocked()
					return fmt.Errorf("backend: join: %w", err)
				}
				s.idx.Store(int64(idx))
				s.logger.Info("joined DNS membership", "server", idx, "addr", s.cfg.AdvertiseAddr)
			}
			s.reportC = conn
			s.dialBackoff = 0
			s.nextDial = time.Time{}
			// Resync: the DNS side may have missed an alarm transition
			// (or marked us down) while the socket was broken.
			if idx := s.ServerIndex(); idx >= 0 {
				flag := 0
				if s.Alarmed() {
					flag = 1
				}
				lines = append([]string{fmt.Sprintf("ALARM %d %d", idx, flag)}, lines...)
				if s.metrics != nil {
					s.metrics.resyncs.Inc()
				}
				s.logger.Info("report socket connected, alarm state resynced",
					"server", idx, "alarmed", flag == 1)
			}
		}
		if err := sendLines(s.reportC, lines); err != nil {
			_ = s.reportC.Close()
			s.reportC = nil
			continue
		}
		// Any successful write proves the path healthy: clear the backoff
		// so the next failure starts the ladder from the minimum again,
		// instead of inheriting a stale ceiling from an old outage.
		s.dialBackoff = 0
		s.nextDial = time.Time{}
		return nil
	}
	s.bumpBackoffLocked()
	return errors.New("backend: report failed after reconnect")
}

// bumpBackoffLocked doubles the reconnect delay up to the configured
// maximum and schedules the next allowed dial with 0.5–1.5x jitter.
// Callers hold reportMu.
func (s *Server) bumpBackoffLocked() {
	if s.metrics != nil {
		s.metrics.redials.Inc()
	}
	if s.dialBackoff == 0 {
		s.dialBackoff = s.cfg.ReconnectBackoffMin
	} else if s.dialBackoff < s.cfg.ReconnectBackoffMax {
		s.dialBackoff *= 2
		if s.dialBackoff > s.cfg.ReconnectBackoffMax {
			s.dialBackoff = s.cfg.ReconnectBackoffMax
		}
	}
	jittered := time.Duration(float64(s.dialBackoff) * (0.5 + rand.Float64()))
	s.nextDial = time.Now().Add(jittered)
}

// joinOver registers the backend over an already-dialed report
// connection and returns the slot index from the "OK <index>" reply.
// At most one reply is ever in flight on the report protocol, so the
// transient reader here cannot swallow bytes meant for a later read.
func joinOver(conn net.Conn, addr string, capacity float64) (int, error) {
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := fmt.Fprintf(conn, "JOIN %s %g\n", addr, capacity); err != nil {
		return 0, err
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(resp)
	if len(fields) != 2 || fields[0] != "OK" {
		return 0, fmt.Errorf("join rejected: %q", strings.TrimSpace(resp))
	}
	idx, err := strconv.Atoi(fields[1])
	if err != nil || idx < 0 {
		return 0, fmt.Errorf("join reply has bad index: %q", strings.TrimSpace(resp))
	}
	return idx, nil
}

func sendLines(conn net.Conn, lines []string) error {
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	r := bufio.NewReader(conn)
	for _, line := range lines {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			return err
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		if len(resp) < 2 || resp[:2] != "OK" {
			return fmt.Errorf("report rejected: %q (line %q)", resp, line)
		}
	}
	return nil
}
