package stats

import "math"

// Interval is a symmetric confidence interval around a point estimate.
type Interval struct {
	Mean     float64
	HalfWide float64 // half-width of the interval
	Level    float64 // confidence level, e.g. 0.95
}

// Lo returns the lower bound of the interval.
func (iv Interval) Lo() float64 { return iv.Mean - iv.HalfWide }

// Hi returns the upper bound of the interval.
func (iv Interval) Hi() float64 { return iv.Mean + iv.HalfWide }

// RelativeWidth returns half-width / |mean|, the paper's "within x% of
// the mean" figure. It returns +Inf for a zero mean.
func (iv Interval) RelativeWidth() float64 {
	if iv.Mean == 0 {
		return math.Inf(1)
	}
	return iv.HalfWide / math.Abs(iv.Mean)
}

// MeanCI returns the t-based confidence interval for the mean of
// independent replications (e.g. one observation per simulation run).
// With fewer than two observations the half-width is infinite.
func MeanCI(obs []float64, level float64) Interval {
	var w Welford
	for _, x := range obs {
		w.Add(x)
	}
	iv := Interval{Mean: w.Mean(), Level: level}
	if w.N() < 2 {
		iv.HalfWide = math.Inf(1)
		return iv
	}
	se := w.StdDev() / math.Sqrt(float64(w.N()))
	iv.HalfWide = tCritical(w.N()-1, level) * se
	return iv
}

// BatchMeansCI estimates a confidence interval for the steady-state
// mean of a (possibly autocorrelated) within-run time series by the
// method of batch means: the series is cut into `batches` contiguous
// batches whose means are treated as approximately independent.
func BatchMeansCI(series []float64, batches int, level float64) Interval {
	if batches < 2 {
		batches = 2
	}
	if len(series) < batches {
		return MeanCI(series, level)
	}
	size := len(series) / batches
	means := make([]float64, 0, batches)
	for b := 0; b < batches; b++ {
		var sum float64
		for i := b * size; i < (b+1)*size; i++ {
			sum += series[i]
		}
		means = append(means, sum/float64(size))
	}
	return MeanCI(means, level)
}

// tCritical returns the two-sided critical value of Student's t
// distribution for the given degrees of freedom and confidence level.
// Exact table values cover the common levels (0.90, 0.95, 0.99) for
// small df; large df fall back to the normal approximation.
func tCritical(df int, level float64) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	table := t95
	switch {
	case math.Abs(level-0.90) < 1e-9:
		table = t90
	case math.Abs(level-0.99) < 1e-9:
		table = t99
	}
	if df <= len(table) {
		return table[df-1]
	}
	switch {
	case math.Abs(level-0.90) < 1e-9:
		return 1.6449
	case math.Abs(level-0.99) < 1e-9:
		return 2.5758
	default:
		return 1.9600
	}
}

// Two-sided critical values t_{df, 1-(1-level)/2} for df = 1..30.
var (
	t90 = []float64{
		6.3138, 2.9200, 2.3534, 2.1318, 2.0150, 1.9432, 1.8946, 1.8595,
		1.8331, 1.8125, 1.7959, 1.7823, 1.7709, 1.7613, 1.7531, 1.7459,
		1.7396, 1.7341, 1.7291, 1.7247, 1.7207, 1.7171, 1.7139, 1.7109,
		1.7081, 1.7056, 1.7033, 1.7011, 1.6991, 1.6973,
	}
	t95 = []float64{
		12.7062, 4.3027, 3.1824, 2.7764, 2.5706, 2.4469, 2.3646, 2.3060,
		2.2622, 2.2281, 2.2010, 2.1788, 2.1604, 2.1448, 2.1314, 2.1199,
		2.1098, 2.1009, 2.0930, 2.0860, 2.0796, 2.0739, 2.0687, 2.0639,
		2.0595, 2.0555, 2.0518, 2.0484, 2.0452, 2.0423,
	}
	t99 = []float64{
		63.6567, 9.9248, 5.8409, 4.6041, 4.0321, 3.7074, 3.4995, 3.3554,
		3.2498, 3.1693, 3.1058, 3.0545, 3.0123, 2.9768, 2.9467, 2.9208,
		2.8982, 2.8784, 2.8609, 2.8453, 2.8314, 2.8188, 2.8073, 2.7969,
		2.7874, 2.7787, 2.7707, 2.7633, 2.7564, 2.7500,
	}
)
