package stats

// WindowedMax aggregates per-entity window observations into a series
// of cross-entity maxima: one maximum per completed window. It is the
// collector behind the paper's Max Utilization metric — for each
// utilization interval it records max_i util_i and the CDF of those
// maxima is the "cumulative frequency of the maximum utilization among
// the servers".
type WindowedMax struct {
	entities int
	pending  []float64
	have     []bool
	count    int
	series   *Series
}

// NewWindowedMax creates a collector for the given number of entities.
func NewWindowedMax(entities int) *WindowedMax {
	return &WindowedMax{
		entities: entities,
		pending:  make([]float64, entities),
		have:     make([]bool, entities),
		series:   NewSeries(1024),
	}
}

// Observe records entity i's value for the current window. When every
// entity has reported, the window closes and its maximum is appended
// to the series. Reporting the same entity twice in one window keeps
// the larger value, which is safe for utilization-style metrics.
func (wm *WindowedMax) Observe(i int, v float64) {
	if i < 0 || i >= wm.entities {
		return
	}
	if wm.have[i] {
		if v > wm.pending[i] {
			wm.pending[i] = v
		}
	} else {
		wm.have[i] = true
		wm.pending[i] = v
		wm.count++
	}
	if wm.count == wm.entities {
		max := wm.pending[0]
		for j := 1; j < wm.entities; j++ {
			if wm.pending[j] > max {
				max = wm.pending[j]
			}
		}
		wm.series.Add(max)
		for j := range wm.have {
			wm.have[j] = false
		}
		wm.count = 0
	}
}

// ObserveAll records one full window of values at once.
func (wm *WindowedMax) ObserveAll(vals []float64) {
	for i, v := range vals {
		wm.Observe(i, v)
	}
}

// Series returns the accumulated per-window maxima.
func (wm *WindowedMax) Series() *Series { return wm.series }

// Windows returns the number of completed windows.
func (wm *WindowedMax) Windows() int { return wm.series.N() }
