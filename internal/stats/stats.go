// Package stats provides the statistical machinery used by the
// simulation study: online accumulators, empirical distribution
// functions (the paper's "cumulative frequency" curves), quantiles,
// and batch-means confidence intervals for steady-state output
// analysis.
package stats

import (
	"math"
	"sort"
)

// Welford is an online accumulator for mean and variance using
// Welford's algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than
// two observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Series is a collection of scalar observations supporting empirical
// CDF queries and quantiles. Observations are accumulated with Add;
// insertion order is preserved (Values), while order statistics use a
// lazily maintained sorted copy.
type Series struct {
	xs     []float64 // insertion order
	sorted []float64 // rebuilt lazily for order-statistic queries
}

// NewSeries returns a series with capacity preallocated for n samples.
func NewSeries(n int) *Series {
	return &Series{xs: make([]float64, 0, n)}
}

// Add appends one observation.
func (s *Series) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = nil
}

// N returns the number of observations.
func (s *Series) N() int { return len(s.xs) }

// Values returns a copy of the observations in insertion order, which
// for time series is temporal order (as batch-means analysis needs).
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

func (s *Series) sort() {
	if s.sorted == nil {
		s.sorted = make([]float64, len(s.xs))
		copy(s.sorted, s.xs)
		sort.Float64s(s.sorted)
	}
}

// CDF returns the empirical cumulative frequency P(X <= x): the
// fraction of observations at or below x. With no observations it
// returns 0.
func (s *Series) CDF(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	// Count of values <= x == index of first value > x.
	i := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i] > x })
	return float64(i) / float64(len(s.sorted))
}

// Quantile returns the p-quantile (0 <= p <= 1) using the nearest-rank
// method. With no observations it returns NaN.
func (s *Series) Quantile(p float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	if p <= 0 {
		return s.sorted[0]
	}
	if p >= 1 {
		return s.sorted[len(s.sorted)-1]
	}
	rank := int(math.Ceil(p*float64(len(s.xs)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.sorted[rank]
}

// Mean returns the sample mean, or NaN with no observations.
func (s *Series) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Max returns the largest observation, or NaN with no observations.
func (s *Series) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.sorted[len(s.sorted)-1]
}

// Min returns the smallest observation, or NaN with no observations.
func (s *Series) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.sorted[0]
}

// Curve samples the empirical CDF at evenly spaced levels between lo
// and hi (inclusive), returning (levels, cumulative frequencies).
// It is the exact data behind the paper's Figures 1 and 2.
func (s *Series) Curve(lo, hi float64, points int) (levels, freqs []float64) {
	if points < 2 {
		points = 2
	}
	levels = make([]float64, points)
	freqs = make([]float64, points)
	step := (hi - lo) / float64(points-1)
	for i := 0; i < points; i++ {
		x := lo + step*float64(i)
		levels[i] = x
		freqs[i] = s.CDF(x)
	}
	return levels, freqs
}
