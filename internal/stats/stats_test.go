package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d, want 8", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7)
	}
	if math.Abs(w.StdDev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", w.StdDev())
	}
}

func TestSeriesCDF(t *testing.T) {
	s := NewSeries(0)
	if got := s.CDF(0.5); got != 0 {
		t.Errorf("empty CDF = %v, want 0", got)
	}
	for _, x := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		s.Add(x)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0.05, 0},
		{0.1, 0.1},
		{0.55, 0.5},
		{0.95, 0.9},
		{1.0, 1.0},
		{2.0, 1.0},
	}
	for _, tt := range tests {
		if got := s.CDF(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestSeriesValuesPreserveInsertionOrder(t *testing.T) {
	s := NewSeries(0)
	in := []float64{0.9, 0.1, 0.5, 0.3}
	for _, x := range in {
		s.Add(x)
	}
	_ = s.CDF(0.5) // triggers the sorted copy
	got := s.Values()
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("Values()[%d] = %v, want insertion order %v", i, got[i], in[i])
		}
	}
}

func TestSeriesCDFAfterInterleavedAdds(t *testing.T) {
	s := NewSeries(4)
	s.Add(0.9)
	s.Add(0.1)
	if got := s.CDF(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CDF(0.5) = %v, want 0.5", got)
	}
	s.Add(0.2) // must re-sort lazily after this
	if got := s.CDF(0.5); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("CDF(0.5) after add = %v, want 2/3", got)
	}
}

func TestSeriesQuantile(t *testing.T) {
	s := NewSeries(0)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		p, want float64
	}{
		{0, 1}, {0.01, 1}, {0.5, 50}, {0.98, 98}, {1, 100},
	}
	for _, tt := range tests {
		if got := s.Quantile(tt.p); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestSeriesMeanMinMax(t *testing.T) {
	s := NewSeries(0)
	for _, x := range []float64{3, 1, 2} {
		s.Add(x)
	}
	if got := s.Mean(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := s.Max(); got != 3 {
		t.Errorf("Max = %v, want 3", got)
	}
	var empty Series
	if !math.IsNaN(empty.Mean()) || !math.IsNaN(empty.Min()) || !math.IsNaN(empty.Max()) {
		t.Error("empty series statistics should be NaN")
	}
}

func TestSeriesCurve(t *testing.T) {
	s := NewSeries(0)
	for i := 0; i < 10; i++ {
		s.Add(float64(i) / 10)
	}
	levels, freqs := s.Curve(0, 0.9, 10)
	if len(levels) != 10 || len(freqs) != 10 {
		t.Fatalf("curve lengths = %d,%d", len(levels), len(freqs))
	}
	if freqs[len(freqs)-1] != 1 {
		t.Errorf("final cumulative frequency = %v, want 1", freqs[len(freqs)-1])
	}
	for i := 1; i < len(freqs); i++ {
		if freqs[i] < freqs[i-1] {
			t.Errorf("curve not monotone at %d", i)
		}
	}
	// Degenerate point count is clamped.
	l2, _ := s.Curve(0, 1, 1)
	if len(l2) != 2 {
		t.Errorf("clamped points = %d, want 2", len(l2))
	}
}

func TestCDFQuantileConsistencyProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSeries(len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			s.Add(x)
		}
		// For every p, at least fraction p of mass is <= Quantile(p).
		for _, p := range []float64{0.1, 0.25, 0.5, 0.9, 0.98} {
			q := s.Quantile(p)
			if s.CDF(q) < p-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanCI(t *testing.T) {
	iv := MeanCI([]float64{10, 12, 14, 16, 18}, 0.95)
	if math.Abs(iv.Mean-14) > 1e-12 {
		t.Errorf("Mean = %v, want 14", iv.Mean)
	}
	// sd = sqrt(10), se = sqrt(2); t(4, .95) = 2.7764
	wantHW := 2.7764 * math.Sqrt2 * math.Sqrt(10) / math.Sqrt(10)
	_ = wantHW
	se := math.Sqrt(10) / math.Sqrt(5)
	if math.Abs(iv.HalfWide-2.7764*se) > 1e-9 {
		t.Errorf("HalfWide = %v, want %v", iv.HalfWide, 2.7764*se)
	}
	if iv.Lo() >= iv.Mean || iv.Hi() <= iv.Mean {
		t.Error("interval must straddle the mean")
	}
	if single := MeanCI([]float64{5}, 0.95); !math.IsInf(single.HalfWide, 1) {
		t.Error("single observation should give infinite half-width")
	}
}

func TestMeanCICoverage(t *testing.T) {
	// Empirical coverage check: 95% CI over normal-ish data should
	// contain the true mean in roughly 95% of trials.
	rng := newLCG(12345)
	const trials = 400
	hits := 0
	for tr := 0; tr < trials; tr++ {
		obs := make([]float64, 10)
		for i := range obs {
			// Sum of uniforms approximates a normal with mean 6.
			var sum float64
			for k := 0; k < 12; k++ {
				sum += rng.float64()
			}
			obs[i] = sum
		}
		iv := MeanCI(obs, 0.95)
		if iv.Lo() <= 6 && 6 <= iv.Hi() {
			hits++
		}
	}
	cov := float64(hits) / trials
	if cov < 0.90 || cov > 0.99 {
		t.Errorf("empirical coverage = %v, want ≈ 0.95", cov)
	}
}

func TestBatchMeansCI(t *testing.T) {
	series := make([]float64, 1000)
	rng := newLCG(7)
	for i := range series {
		series[i] = 5 + rng.float64()
	}
	iv := BatchMeansCI(series, 10, 0.95)
	if math.Abs(iv.Mean-5.5) > 0.05 {
		t.Errorf("batch-means mean = %v, want ~5.5", iv.Mean)
	}
	if iv.HalfWide <= 0 || iv.HalfWide > 0.2 {
		t.Errorf("half-width = %v out of plausible range", iv.HalfWide)
	}
	if iv.RelativeWidth() > 0.04 {
		t.Errorf("relative width = %v, want within 4%% of the mean like the paper", iv.RelativeWidth())
	}
	// Degenerate: fewer samples than batches falls back to MeanCI.
	short := BatchMeansCI([]float64{1, 2}, 10, 0.95)
	if math.Abs(short.Mean-1.5) > 1e-12 {
		t.Errorf("short series mean = %v, want 1.5", short.Mean)
	}
}

func TestIntervalRelativeWidth(t *testing.T) {
	iv := Interval{Mean: 0, HalfWide: 1}
	if !math.IsInf(iv.RelativeWidth(), 1) {
		t.Error("zero mean should give +Inf relative width")
	}
	iv = Interval{Mean: -10, HalfWide: 1}
	if math.Abs(iv.RelativeWidth()-0.1) > 1e-12 {
		t.Errorf("RelativeWidth = %v, want 0.1", iv.RelativeWidth())
	}
}

func TestTCritical(t *testing.T) {
	tests := []struct {
		df    int
		level float64
		want  float64
	}{
		{1, 0.95, 12.7062},
		{4, 0.95, 2.7764},
		{30, 0.95, 2.0423},
		{1000, 0.95, 1.96},
		{4, 0.90, 2.1318},
		{4, 0.99, 4.6041},
		{1000, 0.90, 1.6449},
		{1000, 0.99, 2.5758},
	}
	for _, tt := range tests {
		if got := tCritical(tt.df, tt.level); math.Abs(got-tt.want) > 1e-4 {
			t.Errorf("tCritical(%d, %v) = %v, want %v", tt.df, tt.level, got, tt.want)
		}
	}
	if !math.IsInf(tCritical(0, 0.95), 1) {
		t.Error("df=0 should be infinite")
	}
}

func TestWindowedMax(t *testing.T) {
	wm := NewWindowedMax(3)
	wm.Observe(0, 0.5)
	wm.Observe(1, 0.7)
	if wm.Windows() != 0 {
		t.Error("window closed early")
	}
	wm.Observe(2, 0.6)
	if wm.Windows() != 1 {
		t.Fatal("window did not close after all entities reported")
	}
	if got := wm.Series().Max(); got != 0.7 {
		t.Errorf("window max = %v, want 0.7", got)
	}
	// Second window via ObserveAll; duplicate report keeps the max.
	wm.Observe(0, 0.1)
	wm.Observe(0, 0.9)
	wm.Observe(1, 0.2)
	wm.Observe(2, 0.3)
	if wm.Windows() != 2 {
		t.Fatalf("Windows = %d, want 2", wm.Windows())
	}
	if got := wm.Series().Max(); got != 0.9 {
		t.Errorf("duplicate observation should keep larger value, max = %v", got)
	}
	wm.ObserveAll([]float64{0.2, 0.25, 0.22})
	if wm.Windows() != 3 {
		t.Errorf("Windows = %d after ObserveAll, want 3", wm.Windows())
	}
	vals := wm.Series().Values()
	sort.Float64s(vals)
	if vals[0] != 0.25 {
		t.Errorf("third window max = %v, want 0.25", vals[0])
	}
	// Out-of-range observations are ignored.
	wm.Observe(-1, 1)
	wm.Observe(3, 1)
	if wm.Windows() != 3 {
		t.Error("out-of-range observation affected windows")
	}
}

// newLCG returns a tiny deterministic generator for tests that should
// not depend on the engine's RNG.
type lcg struct{ state uint64 }

func newLCG(seed uint64) *lcg { return &lcg{state: seed} }

func (l *lcg) float64() float64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return float64(l.state>>11) / float64(1<<53)
}
