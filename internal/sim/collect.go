package sim

import (
	"math"

	"dnslb/internal/core"
	"dnslb/internal/engine"
	"dnslb/internal/simcore"
	"dnslb/internal/stats"
	"dnslb/internal/webserver"
)

// utilizationCollector samples server utilization, drives the alarm
// protocol, and accumulates the max-utilization metric. Servers
// recompute utilization (and evaluate the alarm condition) every
// UtilizationInterval; the reported metric averages the sub-windows
// spanned by each MetricWindow.
type utilizationCollector struct {
	cfg     Config
	sim     *simcore.Simulator
	eng     *engine.Engine
	state   *core.State
	servers []*webserver.Server
	res     *Result
	fail    func(error)
	horizon float64

	maxUtil      *stats.WindowedMax
	utilSum      []float64
	subCount     int
	subPerMetric int
}

func newUtilizationCollector(cfg Config, sim *simcore.Simulator, eng *engine.Engine, servers []*webserver.Server, res *Result, fail func(error), horizon float64) *utilizationCollector {
	return &utilizationCollector{
		cfg:          cfg,
		sim:          sim,
		eng:          eng,
		state:        eng.State(),
		servers:      servers,
		res:          res,
		fail:         fail,
		horizon:      horizon,
		maxUtil:      stats.NewWindowedMax(cfg.Servers),
		utilSum:      make([]float64, cfg.Servers),
		subPerMetric: int(math.Round(cfg.MetricWindow / cfg.UtilizationInterval)),
	}
}

func (u *utilizationCollector) install() {
	u.sim.Schedule(u.cfg.UtilizationInterval, u.sample)
}

func (u *utilizationCollector) sample() {
	now := u.sim.Now()
	measuring := now > u.cfg.Warmup
	for i, sv := range u.servers {
		util := sv.CloseWindow(now)
		if u.state.Down(i) || !u.state.Member(i) {
			// A dead or retired server serves nothing and signals
			// nothing; its residual backlog drain is not a utilization
			// observation (the metric window averages it as zero).
			continue
		}
		if u.cfg.AlarmThreshold > 0 {
			over := util > u.cfg.AlarmThreshold
			if over != u.state.Alarmed(i) {
				if err := u.eng.SetAlarm(i, over); err != nil {
					u.fail(err)
				}
				u.res.AlarmSignals++
			}
		}
		if measuring {
			u.utilSum[i] += util
		}
	}
	if measuring {
		u.subCount++
		if u.subCount == u.subPerMetric {
			for i := range u.utilSum {
				u.maxUtil.Observe(i, u.utilSum[i]/float64(u.subPerMetric))
				u.utilSum[i] = 0
			}
			u.subCount = 0
		}
	}
	if now < u.horizon {
		u.sim.Schedule(u.cfg.UtilizationInterval, u.sample)
	}
}

// estimatorCollector closes the dynamic hidden-load feedback loop:
// each EstimatorInterval it gathers every live member's per-domain hit
// report into the engine's estimator and rolls the re-estimated
// weights into the scheduler state. The report-loss fault model drops
// a server's whole interval report with probability ReportLossProb;
// dead servers report nothing.
type estimatorCollector struct {
	cfg     Config
	sim     *simcore.Simulator
	eng     *engine.Engine
	state   *core.State
	servers []*webserver.Server
	res     *Result
	fail    func(error)
	horizon float64

	loss *simcore.Stream
}

func (c *estimatorCollector) install() {
	c.state = c.eng.State()
	c.loss = c.sim.Stream("reportloss")
	c.sim.Schedule(c.cfg.EstimatorInterval, c.collect)
}

func (c *estimatorCollector) collect() {
	for i, sv := range c.servers {
		hits := sv.TakeDomainHits()
		if c.state.Down(i) || !c.state.Member(i) {
			// Dead and retired servers report nothing (draining ones
			// still do — they are alive and serving).
			continue
		}
		if c.cfg.ReportLossProb > 0 && c.loss.Float64() < c.cfg.ReportLossProb {
			c.res.LostReports++
			continue
		}
		for j, h := range hits {
			c.eng.RecordHits(j, h)
		}
	}
	if err := c.eng.RollEstimates(c.cfg.EstimatorInterval); err != nil {
		c.fail(err)
	}
	if c.sim.Now() < c.horizon {
		c.sim.Schedule(c.cfg.EstimatorInterval, c.collect)
	}
}

// estimatorProbe samples the estimator's demand view every
// UtilizationInterval and records when it first crosses the overload
// line — the estimator-driven early alarm next to the paper's reactive
// per-server alarm. For the reactive kind the view is the rolled EWMA
// (it can only move at collection rolls); for the predictive kind it
// is the NS-cache forecast, which reacts to TTL handouts between
// rolls. The probe is read-only: it draws from no stream and mutates
// no scheduler state, so installing it never perturbs decisions.
// Sampling starts after warmup, like every other metric: the cold-start
// transient (an entire client population resolving through empty NS
// caches at once) looks exactly like a flash crowd to the forecast and
// would trip the alarm before the system reaches steady state.
type estimatorProbe struct {
	cfg     Config
	sim     *simcore.Simulator
	eng     *engine.Engine
	res     *Result
	horizon float64
}

func (p *estimatorProbe) install() {
	if p.cfg.AlarmThreshold <= 0 {
		return
	}
	p.sim.Schedule(p.cfg.Warmup+p.cfg.UtilizationInterval, p.sample)
}

func (p *estimatorProbe) sample() {
	now := p.sim.Now()
	if p.res.EstimatorAlarmTime == 0 {
		rates, ok := p.eng.ForecastRates(now)
		if !ok {
			rates, ok = p.eng.EstimatorRates()
		}
		if ok {
			var demand float64
			for _, r := range rates {
				demand += r
			}
			if demand > p.cfg.AlarmThreshold*p.cfg.TotalCapacity {
				p.res.EstimatorAlarmTime = now
			}
		}
	}
	if p.res.EstimatorAlarmTime == 0 && now < p.horizon {
		p.sim.Schedule(p.cfg.UtilizationInterval, p.sample)
	}
}
