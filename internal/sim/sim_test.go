package sim

import (
	"math"
	"testing"
)

// quickCfg returns a config scaled down for fast unit tests: one
// simulated hour instead of five.
func quickCfg(policy string) Config {
	cfg := DefaultConfig(policy)
	cfg.Duration = 3600
	return cfg
}

func TestDefaultConfigIsValid(t *testing.T) {
	if err := DefaultConfig("RR").Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad workload", func(c *Config) { c.Workload.Domains = 0 }},
		{"zero servers", func(c *Config) { c.Servers = 0 }},
		{"heterogeneity 100", func(c *Config) { c.HeterogeneityPct = 100 }},
		{"negative heterogeneity", func(c *Config) { c.HeterogeneityPct = -1 }},
		{"zero capacity", func(c *Config) { c.TotalCapacity = 0 }},
		{"empty policy", func(c *Config) { c.Policy = "" }},
		{"zero constant TTL", func(c *Config) { c.ConstantTTL = 0 }},
		{"negative min NS TTL", func(c *Config) { c.MinNSTTL = -1 }},
		{"zero interval", func(c *Config) { c.UtilizationInterval = 0 }},
		{"alarm threshold > 1", func(c *Config) { c.AlarmThreshold = 1.5 }},
		{"metric window below interval", func(c *Config) { c.MetricWindow = 4 }},
		{"metric window not multiple", func(c *Config) { c.MetricWindow = 20 }},
		{"estimator interval", func(c *Config) { c.OracleWeights = false; c.EstimatorInterval = 0 }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"negative warmup", func(c *Config) { c.Warmup = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig("RR")
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	cfg := quickCfg("bogus")
	if _, err := Run(cfg); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestRunBasicInvariants(t *testing.T) {
	cfg := quickCfg("RR")
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantWindows := int(cfg.Duration / cfg.MetricWindow)
	if got := r.MaxUtil.N(); got < wantWindows-2 || got > wantWindows+2 {
		t.Errorf("metric windows = %d, want ≈ %d", got, wantWindows)
	}
	// System-wide mean utilization ≈ 2/3 (paper Table 1).
	var mean float64
	for _, u := range r.MeanServerUtil {
		mean += u
	}
	mean /= float64(len(r.MeanServerUtil))
	if math.Abs(mean-2.0/3) > 0.05 {
		t.Errorf("mean utilization = %v, want ≈ 2/3", mean)
	}
	if r.AddressRequests == 0 {
		t.Error("no address requests reached the DNS")
	}
	if r.CacheHits == 0 {
		t.Error("NS caches never hit")
	}
	if r.TotalHits == 0 || r.TotalPages == 0 {
		t.Error("no traffic served")
	}
	// DNS controls only a small fraction of the page requests.
	if f := r.ControlledFraction(); f <= 0 || f > 0.04 {
		t.Errorf("controlled fraction = %v, want small (paper: below 4%%)", f)
	}
	if r.Sched.Decisions != r.AddressRequests {
		t.Errorf("scheduler decisions %d != address requests %d", r.Sched.Decisions, r.AddressRequests)
	}
}

func TestRunDeterministicReplay(t *testing.T) {
	cfg := quickCfg("DRR2-TTL/S_K")
	cfg.Duration = 1800
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AddressRequests != b.AddressRequests || a.TotalHits != b.TotalHits ||
		a.EventsFired != b.EventsFired {
		t.Errorf("same seed, different history: %+v vs %+v", a, b)
	}
	if a.ProbMaxUnder(0.9) != b.ProbMaxUnder(0.9) {
		t.Error("same seed, different metric")
	}
	cfg.Seed = 999
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalHits == c.TotalHits && a.AddressRequests == c.AddressRequests {
		t.Error("different seeds produced identical runs")
	}
}

func TestAdaptiveBeatsRR(t *testing.T) {
	// The paper's central claim at the default heterogeneity.
	rr, err := Run(quickCfg("RR"))
	if err != nil {
		t.Fatal(err)
	}
	best, err := Run(quickCfg("DRR2-TTL/S_K"))
	if err != nil {
		t.Fatal(err)
	}
	if best.ProbMaxUnder(0.9) <= rr.ProbMaxUnder(0.9)+0.3 {
		t.Errorf("DRR2-TTL/S_K P(<0.9)=%v should far exceed RR %v",
			best.ProbMaxUnder(0.9), rr.ProbMaxUnder(0.9))
	}
}

func TestIdealEnvelope(t *testing.T) {
	// DRR2-TTL/S_K must land close to the Ideal envelope (PRR under a
	// uniform client distribution), the paper's Figure 1 observation.
	ideal := quickCfg("Ideal")
	ideal.Workload.Uniform = true
	ri, err := Run(ideal)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(quickCfg("DRR2-TTL/S_K"))
	if err != nil {
		t.Fatal(err)
	}
	di := ri.ProbMaxUnder(0.9)
	db := rb.ProbMaxUnder(0.9)
	if math.Abs(di-db) > 0.1 {
		t.Errorf("DRR2-TTL/S_K %v not close to Ideal %v", db, di)
	}
}

func TestCalibratedAddressRates(t *testing.T) {
	// The paper chose TTL values so that each policy's average address
	// request rate matches the constant-TTL baseline. Verify in vivo.
	base, err := Run(quickCfg("RR"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{"DRR2-TTL/S_K", "PRR2-TTL/K", "DRR2-TTL/S_2", "PRR2-TTL/2"} {
		r, err := Run(quickCfg(pol))
		if err != nil {
			t.Fatal(err)
		}
		ratio := r.AddressRate() / base.AddressRate()
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("%s address rate ratio vs constant TTL = %v, want ≈ 1", pol, ratio)
		}
	}
}

func TestNonCooperativeNSRaisesTTLs(t *testing.T) {
	cfg := quickCfg("DRR2-TTL/S_K")
	cfg.MinNSTTL = 300
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ClampedTTLs == 0 {
		t.Error("min TTL 300 should clamp some adaptive TTLs")
	}
	// Fewer DNS requests when NSes cache longer.
	coop, err := Run(quickCfg("DRR2-TTL/S_K"))
	if err != nil {
		t.Fatal(err)
	}
	if r.AddressRequests >= coop.AddressRequests {
		t.Errorf("clamped run made %d address requests, cooperative %d; want fewer",
			r.AddressRequests, coop.AddressRequests)
	}
}

func TestDynamicEstimatorRun(t *testing.T) {
	cfg := quickCfg("DRR2-TTL/S_K")
	cfg.OracleWeights = false
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The dynamic estimator should get close to oracle performance.
	oracle, err := Run(quickCfg("DRR2-TTL/S_K"))
	if err != nil {
		t.Fatal(err)
	}
	if r.ProbMaxUnder(0.98) < oracle.ProbMaxUnder(0.98)-0.15 {
		t.Errorf("estimator-driven P(<0.98)=%v far below oracle %v",
			r.ProbMaxUnder(0.98), oracle.ProbMaxUnder(0.98))
	}
}

func TestPerturbationDegradesTwoClassSchemes(t *testing.T) {
	// Figures 6–7: estimation error hurts TTL/2 more than TTL/K.
	mk := func(pol string, errPct float64) float64 {
		cfg := quickCfg(pol)
		cfg.HeterogeneityPct = 50
		cfg.Workload.PerturbationPct = errPct
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.ProbMaxUnder(0.98)
	}
	kClean := mk("DRR2-TTL/S_K", 0)
	kErr := mk("DRR2-TTL/S_K", 40)
	if kClean-kErr > 0.2 {
		t.Errorf("TTL/S_K degraded from %v to %v under 40%% error; paper says it is robust", kClean, kErr)
	}
}

func TestProbMaxUnderBatchCI(t *testing.T) {
	cfg := quickCfg("DRR2-TTL/S_K")
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	iv := r.ProbMaxUnderBatchCI(0.98, 0.95)
	p := r.ProbMaxUnder(0.98)
	// Batch means drops remainder windows, so the means agree only
	// approximately.
	if iv.Mean < p-0.05 || iv.Mean > p+0.05 {
		t.Errorf("batch-means mean %v far from point estimate %v", iv.Mean, p)
	}
	if iv.HalfWide <= 0 {
		t.Error("half-width should be positive for a stochastic series")
	}
	// The paper observed 95% CIs within 4% of the mean over 5 hours;
	// over one hour a looser bound still demonstrates convergence.
	if iv.RelativeWidth() > 0.25 {
		t.Errorf("relative CI width = %v, want converged", iv.RelativeWidth())
	}
}

func TestAlarmsFire(t *testing.T) {
	r, err := Run(quickCfg("RR"))
	if err != nil {
		t.Fatal(err)
	}
	if r.AlarmSignals == 0 {
		t.Error("RR under heterogeneous load should trigger alarm signals")
	}
}

func TestRunReplications(t *testing.T) {
	cfg := quickCfg("RR")
	cfg.Duration = 900
	results, err := RunReplications(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	// Distinct seeds → distinct runs.
	if results[0].TotalHits == results[1].TotalHits && results[1].TotalHits == results[2].TotalHits {
		t.Error("replications look identical")
	}
	iv := ProbMaxUnderCI(results, 0.98, 0.95)
	if iv.Mean < 0 || iv.Mean > 1 {
		t.Errorf("CI mean %v out of range", iv.Mean)
	}
	if _, err := RunReplications(cfg, 0); err == nil {
		t.Error("zero reps should error")
	}
}

func TestAllPoliciesRunToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs every policy")
	}
	for _, pol := range []string{
		"RR", "RR2", "DAL",
		"PRR-TTL/1", "PRR-TTL/2", "PRR-TTL/K",
		"PRR2-TTL/1", "PRR2-TTL/2", "PRR2-TTL/K",
		"DRR-TTL/S_1", "DRR-TTL/S_2", "DRR-TTL/S_K",
		"DRR2-TTL/S_1", "DRR2-TTL/S_2", "DRR2-TTL/S_K",
	} {
		cfg := quickCfg(pol)
		cfg.Duration = 900
		r, err := Run(cfg)
		if err != nil {
			t.Errorf("%s: %v", pol, err)
			continue
		}
		if r.MaxUtil.N() == 0 {
			t.Errorf("%s: no metric windows", pol)
		}
	}
}

func TestResponseTimeMetric(t *testing.T) {
	rr, err := Run(quickCfg("RR"))
	if err != nil {
		t.Fatal(err)
	}
	best, err := Run(quickCfg("DRR2-TTL/S_K"))
	if err != nil {
		t.Fatal(err)
	}
	if rr.MeanResponseTime <= 0 || best.MeanResponseTime <= 0 {
		t.Fatal("response times should be positive")
	}
	if rr.MaxResponseTime < rr.MeanResponseTime {
		t.Error("max response below mean")
	}
	// Better balancing means less queueing: the adaptive policy's mean
	// response time must beat RR's.
	if best.MeanResponseTime >= rr.MeanResponseTime {
		t.Errorf("DRR2-TTL/S_K mean response %v should beat RR %v",
			best.MeanResponseTime, rr.MeanResponseTime)
	}
}

func TestGeoExtension(t *testing.T) {
	base := quickCfg("DRR2-TTL/S_K")
	base.HeterogeneityPct = 35
	run := func(pref float64) *Result {
		cfg := base
		cfg.GeoPreference = pref
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// Tiny preference ≈ paper behaviour, but the latency metric is on.
	loadFirst := run(1e-9)
	geoFirst := run(1)
	if loadFirst.MeanLatencyMS <= 0 || geoFirst.MeanLatencyMS <= 0 {
		t.Fatal("latency metric missing")
	}
	// Pure proximity gives lower latency but worse balance.
	if geoFirst.MeanLatencyMS >= loadFirst.MeanLatencyMS {
		t.Errorf("geo-first latency %v should beat load-first %v",
			geoFirst.MeanLatencyMS, loadFirst.MeanLatencyMS)
	}
	if geoFirst.ProbMaxUnder(0.98) >= loadFirst.ProbMaxUnder(0.98) {
		t.Errorf("geo-first balance %v should be worse than load-first %v",
			geoFirst.ProbMaxUnder(0.98), loadFirst.ProbMaxUnder(0.98))
	}
	// Without the extension the metric stays zero.
	off, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if off.MeanLatencyMS != 0 {
		t.Errorf("latency metric = %v with geo off, want 0", off.MeanLatencyMS)
	}
}

func TestGeoConfigValidation(t *testing.T) {
	cfg := quickCfg("RR")
	cfg.GeoPreference = 2
	if _, err := Run(cfg); err == nil {
		t.Error("GeoPreference > 1 should error")
	}
	cfg = quickCfg("RR")
	cfg.GeoBaseMS = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative geo base should error")
	}
}
