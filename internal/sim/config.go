// Package sim assembles the full simulation of the paper's system: a
// Zipf-skewed client population, per-domain name-server caches, the
// DNS scheduler under test, and the heterogeneous Web server cluster,
// all driven by the discrete-event engine. One Run reproduces one
// point of one figure; the experiments package sweeps Runs.
package sim

import (
	"errors"
	"fmt"
	"math"

	"dnslb/internal/core"
	"dnslb/internal/trace"
	"dnslb/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	// Workload is the client population model.
	Workload workload.Config

	// Trace optionally replaces the generated client population with a
	// recorded workload (see internal/trace): arrivals are replayed
	// verbatim, so every policy faces identical traffic. The Workload
	// field still supplies the domain count and the oracle weights.
	Trace []trace.Record

	// Servers is the cluster size N (paper default 7, range 5–17).
	Servers int
	// HeterogeneityPct is the maximum difference among relative server
	// capacities in percent (paper: 20, 35, 50, 65).
	HeterogeneityPct int
	// TotalCapacity is ΣC_i in hits/second, constant across
	// heterogeneity levels (paper: 500).
	TotalCapacity float64

	// Policy is the DNS scheduling policy catalog name (core package).
	Policy string
	// ConstantTTL is the baseline TTL in seconds all adaptive policies
	// are rate-calibrated against (paper: 240).
	ConstantTTL float64
	// MinNSTTL models non-cooperative name servers: every NS raises a
	// proposed TTL below this value to it. 0 = fully cooperative.
	MinNSTTL float64

	// UtilizationInterval is how often each server recomputes its
	// utilization and evaluates the alarm condition, in seconds
	// (paper: 8).
	UtilizationInterval float64
	// AlarmThreshold is the utilization θ above which a server signals
	// the DNS that it is critically loaded (0 disables alarms).
	AlarmThreshold float64
	// MetricWindow is the observation window for the reported maximum
	// utilization metric, in seconds. It must be a multiple of the
	// utilization interval; each metric observation averages the
	// consecutive alarm-interval utilizations it spans. A longer
	// metric window separates persistent scheduling imbalance from
	// short-term stochastic burst noise (see DESIGN.md).
	MetricWindow float64

	// OracleWeights gives the DNS perfect knowledge of the nominal
	// domain request rates (the paper's setting; perturbations in the
	// workload then model estimation error). When false, the DNS runs
	// the dynamic hidden-load estimator instead.
	OracleWeights bool
	// EstimatorInterval is the collection period of the dynamic
	// estimator in seconds (used when OracleWeights is false).
	EstimatorInterval float64
	// EstimatorAlpha is the EWMA weight of the newest interval.
	EstimatorAlpha float64
	// Estimator selects the hidden-load estimator kind when
	// OracleWeights is false: core.EstimatorReactive (the paper's EWMA
	// over reports, default when empty) or core.EstimatorPredictive
	// (the NS-cache forecasting model fed by the engine's own TTL
	// handouts).
	Estimator string

	// FlashCrowds injects flash-crowd events (predictive-estimation
	// extension): at each event time a burst of new clients joins one
	// domain, arriving through FRESH name-server caches — new resolver
	// populations whose cache misses hit the DNS immediately. That
	// decision burst is the signal the predictive estimator forecasts
	// from, one to two collection intervals before the reactive
	// estimator sees the hits in a report.
	FlashCrowds []FlashEvent

	// Faults injects server crash/recovery events at fixed virtual
	// times (failure extension). The DNS learns of a membership change
	// instantly — the optimistic bound; what it cannot fix is the
	// hidden load already pinned to a dead server by cached mappings,
	// which the failure metrics of Result quantify.
	Faults []FaultEvent
	// ReportLossProb is the probability that one server's hidden-load
	// report for one estimator collection interval is lost in transit
	// (failure extension; only meaningful when OracleWeights is false).
	ReportLossProb float64

	// Detection models how the DNS learns about the Faults events
	// instead of the default instant-knowledge bound: a fault flips the
	// server's ground truth immediately (clients lose pages from that
	// moment), but the scheduler's liveness view only follows after the
	// configured detector fires. Nil keeps the instant bound — that path
	// is byte-identical to a build without this field.
	Detection *DetectionConfig

	// Drains schedules graceful server retirements (zero-downtime
	// reconfiguration extension): at its event time the server stops
	// receiving new mappings but keeps serving the hidden load its
	// cached mappings still pin to it; once the largest outstanding TTL
	// expires it leaves membership. This is the simulated counterpart
	// of the live DRAIN path (internal/dnsserver).
	Drains []DrainEvent

	// Replicas runs the DNS as a set of R replicated authoritative
	// servers (replication extension): domain d resolves through replica
	// d mod R, server i reports load to replica i mod R, and the
	// replicas exchange soft-state deltas (internal/replication) every
	// ReplicationInterval. 0 or 1 runs the paper's single authoritative
	// DNS — that path is byte-identical to a build without this field.
	Replicas int
	// ReplicationInterval is the gossip cadence between replicas in
	// virtual seconds (required when Replicas > 1).
	ReplicationInterval float64
	// ReplicaLag delays every inter-replica delta delivery by this many
	// virtual seconds — the staleness knob of the replication extension.
	ReplicaLag float64
	// Partitions cuts every inter-replica link during each [Start,End)
	// window: deltas flushed while cut are dropped (exactly the live
	// replicator's failure model), and the first exchange after healing
	// leads with full anti-entropy snapshots.
	Partitions []PartitionEvent

	// ECSMisalign enables the resolver/client misalignment extension
	// (EDNS-Client-Subnet): a fraction of the domains resolve through a
	// name server located in a DIFFERENT domain, so the address the DNS
	// sees misidentifies where the clients actually are. With UseECS the
	// resolvers forward the clients' true subnet in an ECS option and
	// the engine classifies by it; without, the DNS falls back to the
	// resolver address and proximity-aware policies aim at the wrong
	// domain. Nil keeps the paper's aligned-resolver model — that path
	// is byte-identical to a build without this field.
	ECSMisalign *ECSMisalignConfig

	// GeoPreference enables the proximity extension: with probability
	// GeoPreference the DNS answers with the nearest available server
	// (by the synthetic ring geography) instead of the discipline's
	// choice. 0 disables the extension (the paper's behaviour).
	GeoPreference float64
	// GeoBaseMS and GeoSpanMS shape the synthetic ring latency matrix
	// (defaults 20 ms base, 160 ms span when GeoPreference > 0).
	GeoBaseMS, GeoSpanMS float64

	// DecisionTap, when non-nil, observes every scheduler decision in
	// scheduling order — the engine's OnDecision seam, which the
	// sim/live conformance and replay tests record from. Ignored by
	// Validate and excluded from serialized output.
	DecisionTap func(domain int, d core.Decision) `json:"-"`

	// Duration is the measured virtual time in seconds (paper: 5 h).
	Duration float64
	// Warmup is discarded virtual time before measurement starts.
	Warmup float64
	// Seed makes the run reproducible.
	Seed uint64
}

// Detector kinds for DetectionConfig.Kind.
const (
	// DetectProbe is active probing: the DNS probes each server every
	// Interval seconds and declares it down after FailN consecutive
	// failures, up again after RiseM consecutive successes — the model
	// of the live internal/probe prober.
	DetectProbe = "probe"
	// DetectReport is passive missed-report detection: each server's
	// periodic load report doubles as a liveness signal, and the DNS
	// declares the server down after K consecutive reports fail to
	// arrive. Recovery is seen at the first report after restart — the
	// model of the live LivenessMonitor.
	DetectReport = "report"
)

// DetectionConfig parameterizes the crash detector the DNS runs (see
// Config.Detection). The probe phase relative to each fault event is
// uniform over one interval, drawn from the run's own deterministic
// stream.
type DetectionConfig struct {
	// Kind selects the detector: DetectProbe or DetectReport.
	Kind string
	// Interval is the probe period (probe) or report period (report) in
	// virtual seconds.
	Interval float64
	// FailN and RiseM are the probe detector's hysteresis thresholds
	// (consecutive failures to exclude, consecutive successes to
	// re-admit). Ignored by the report detector.
	FailN, RiseM int
	// K is the report detector's missed-report threshold. Ignored by
	// the probe detector.
	K int
}

func (d *DetectionConfig) validate() error {
	switch d.Kind {
	case DetectProbe:
		if d.FailN < 1 || d.RiseM < 1 {
			return fmt.Errorf("sim: probe detection needs FailN and RiseM >= 1, got %d/%d", d.FailN, d.RiseM)
		}
	case DetectReport:
		if d.K < 1 {
			return fmt.Errorf("sim: report detection needs K >= 1, got %d", d.K)
		}
	default:
		return fmt.Errorf("sim: unknown detection kind %q (want %s or %s)", d.Kind, DetectProbe, DetectReport)
	}
	if d.Interval <= 0 {
		return errors.New("sim: detection interval must be positive")
	}
	return nil
}

// downDelay returns the crash-to-exclusion delay for one fault, with
// the detector phase drawn from phase ∈ [0,1). A probe detector fires
// on its FailN-th consecutive failed probe; a report detector fires
// when the K-th expected report fails to arrive.
func (d *DetectionConfig) downDelay(phase float64) float64 {
	switch d.Kind {
	case DetectProbe:
		return (phase + float64(d.FailN-1)) * d.Interval
	default: // DetectReport
		return (phase + float64(d.K-1)) * d.Interval
	}
}

// upDelay returns the recovery-to-readmission delay: RiseM successful
// probes, or the first report after restart.
func (d *DetectionConfig) upDelay(phase float64) float64 {
	if d.Kind == DetectProbe {
		return (phase + float64(d.RiseM-1)) * d.Interval
	}
	return phase * d.Interval
}

// FaultEvent is one liveness transition of one server at a fixed
// virtual time: Down true crashes the server, false recovers it.
type FaultEvent struct {
	Time   float64
	Server int
	Down   bool
}

// DrainEvent is one graceful retirement of one server at a fixed
// virtual time.
type DrainEvent struct {
	Time   float64
	Server int
}

// PartitionEvent cuts every inter-replica link during [Start,End).
type PartitionEvent struct {
	Start, End float64
}

// FlashEvent is one flash crowd: at virtual time Time, Clients extra
// clients join Domain for Duration seconds, resolving through
// Resolvers fresh name-server caches (a new resolver population — the
// defining property of a flash crowd as seen from the DNS).
type FlashEvent struct {
	Time      float64
	Domain    int
	Clients   int
	Resolvers int
	Duration  float64
}

// Outage returns the crash/recover event pair for one server failing
// at start and coming back after duration seconds.
func Outage(server int, start, duration float64) []FaultEvent {
	return []FaultEvent{
		{Time: start, Server: server, Down: true},
		{Time: start + duration, Server: server, Down: false},
	}
}

// DefaultConfig returns the paper's default parameters (Table 1) for
// the given policy name.
func DefaultConfig(policy string) Config {
	return Config{
		Workload:            workload.Default(),
		Servers:             7,
		HeterogeneityPct:    20,
		TotalCapacity:       500,
		Policy:              policy,
		ConstantTTL:         240,
		UtilizationInterval: 8,
		AlarmThreshold:      0.9,
		MetricWindow:        32,
		OracleWeights:       true,
		EstimatorInterval:   60,
		EstimatorAlpha:      core.DefaultEstimatorAlpha,
		Duration:            5 * 3600,
		Warmup:              600,
		Seed:                1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	switch {
	case c.Servers <= 0:
		return errors.New("sim: Servers must be positive")
	case c.HeterogeneityPct < 0 || c.HeterogeneityPct >= 100:
		return fmt.Errorf("sim: HeterogeneityPct %d out of [0,100)", c.HeterogeneityPct)
	case c.TotalCapacity <= 0:
		return errors.New("sim: TotalCapacity must be positive")
	case c.Policy == "":
		return errors.New("sim: Policy is required")
	case c.ConstantTTL <= 0:
		return errors.New("sim: ConstantTTL must be positive")
	case c.MinNSTTL < 0:
		return errors.New("sim: MinNSTTL must be non-negative")
	case c.UtilizationInterval <= 0:
		return errors.New("sim: UtilizationInterval must be positive")
	case c.AlarmThreshold < 0 || c.AlarmThreshold > 1:
		return errors.New("sim: AlarmThreshold must be within [0,1]")
	case c.MetricWindow < c.UtilizationInterval:
		return errors.New("sim: MetricWindow must be at least the utilization interval")
	case math.Abs(c.MetricWindow/c.UtilizationInterval-math.Round(c.MetricWindow/c.UtilizationInterval)) > 1e-9:
		return errors.New("sim: MetricWindow must be a multiple of the utilization interval")
	case !c.OracleWeights && c.EstimatorInterval <= 0:
		return errors.New("sim: EstimatorInterval must be positive")
	case c.Estimator != "" && c.Estimator != core.EstimatorReactive && c.Estimator != core.EstimatorPredictive:
		return fmt.Errorf("sim: unknown estimator kind %q (want %s or %s)",
			c.Estimator, core.EstimatorReactive, core.EstimatorPredictive)
	case c.Duration <= 0:
		return errors.New("sim: Duration must be positive")
	case c.Warmup < 0:
		return errors.New("sim: Warmup must be non-negative")
	case c.GeoPreference < 0 || c.GeoPreference > 1:
		return errors.New("sim: GeoPreference must be within [0,1]")
	case c.GeoBaseMS < 0 || c.GeoSpanMS < 0:
		return errors.New("sim: geo latencies must be non-negative")
	case c.ReportLossProb < 0 || c.ReportLossProb > 1:
		return errors.New("sim: ReportLossProb must be within [0,1]")
	}
	if c.ECSMisalign != nil {
		if err := c.ECSMisalign.validate(c.Workload.Domains); err != nil {
			return err
		}
		if c.Replicas > 1 {
			return errors.New("sim: ECSMisalign is not supported with Replicas > 1")
		}
	}
	if c.Detection != nil {
		if err := c.Detection.validate(); err != nil {
			return err
		}
		if c.Replicas > 1 {
			return errors.New("sim: Detection is not supported with Replicas > 1")
		}
	}
	for i, ev := range c.Faults {
		if ev.Time < 0 {
			return fmt.Errorf("sim: fault event %d at negative time %v", i, ev.Time)
		}
		if ev.Server < 0 || ev.Server >= c.Servers {
			return fmt.Errorf("sim: fault event %d targets server %d, cluster has %d", i, ev.Server, c.Servers)
		}
	}
	for i, ev := range c.Drains {
		if ev.Time < 0 {
			return fmt.Errorf("sim: drain event %d at negative time %v", i, ev.Time)
		}
		if ev.Server < 0 || ev.Server >= c.Servers {
			return fmt.Errorf("sim: drain event %d targets server %d, cluster has %d", i, ev.Server, c.Servers)
		}
	}
	for i, ev := range c.FlashCrowds {
		switch {
		case ev.Time < 0:
			return fmt.Errorf("sim: flash crowd %d at negative time %v", i, ev.Time)
		case ev.Domain < 0 || ev.Domain >= c.Workload.Domains:
			return fmt.Errorf("sim: flash crowd %d targets domain %d, workload has %d", i, ev.Domain, c.Workload.Domains)
		case ev.Clients <= 0:
			return fmt.Errorf("sim: flash crowd %d needs a positive client count, got %d", i, ev.Clients)
		case ev.Resolvers <= 0:
			return fmt.Errorf("sim: flash crowd %d needs a positive resolver count, got %d", i, ev.Resolvers)
		case ev.Duration <= 0:
			return fmt.Errorf("sim: flash crowd %d needs a positive duration, got %v", i, ev.Duration)
		}
	}
	if len(c.FlashCrowds) > 0 {
		if len(c.Trace) > 0 {
			return errors.New("sim: FlashCrowds cannot be combined with trace playback")
		}
		if c.Replicas > 1 {
			return errors.New("sim: FlashCrowds are not supported with Replicas > 1")
		}
	}
	if c.Replicas < 0 {
		return errors.New("sim: Replicas must be non-negative")
	}
	if c.Replicas > 1 {
		switch {
		case c.ReplicationInterval <= 0:
			return errors.New("sim: ReplicationInterval must be positive when Replicas > 1")
		case c.ReplicaLag < 0:
			return errors.New("sim: ReplicaLag must be non-negative")
		case len(c.Faults) > 0 || len(c.Drains) > 0:
			// Membership events under replication would need the drain
			// window coordination of the live path; the simulated
			// extension scopes to soft-state divergence only.
			return errors.New("sim: Faults and Drains are not supported with Replicas > 1")
		}
		for i, p := range c.Partitions {
			if p.Start < 0 || p.End <= p.Start {
				return fmt.Errorf("sim: partition %d window [%v,%v) is not a positive interval", i, p.Start, p.End)
			}
		}
	} else if len(c.Partitions) > 0 {
		return errors.New("sim: Partitions require Replicas > 1")
	}
	return nil
}
