package sim

import (
	"math"
	"testing"
)

// replicaCfg is a short replicated run: R replicas gossiping every 8
// virtual seconds with the given delivery lag.
func replicaCfg(policy string, replicas int, lag float64) Config {
	cfg := DefaultConfig(policy)
	cfg.Duration = 1800
	cfg.Warmup = 100
	cfg.Replicas = replicas
	cfg.ReplicationInterval = 8
	cfg.ReplicaLag = lag
	return cfg
}

func TestReplicaValidation(t *testing.T) {
	cfg := DefaultConfig("RR")
	cfg.Replicas = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative Replicas should error")
	}
	cfg.Replicas = 2
	if err := cfg.Validate(); err == nil {
		t.Error("Replicas > 1 without ReplicationInterval should error")
	}
	cfg.ReplicationInterval = 8
	cfg.ReplicaLag = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative ReplicaLag should error")
	}
	cfg.ReplicaLag = 0
	cfg.Faults = Outage(0, 100, 50)
	if err := cfg.Validate(); err == nil {
		t.Error("Faults with Replicas > 1 should error")
	}
	cfg.Faults = nil
	cfg.Drains = []DrainEvent{{Time: 100, Server: 0}}
	if err := cfg.Validate(); err == nil {
		t.Error("Drains with Replicas > 1 should error")
	}
	cfg.Drains = nil
	cfg.Partitions = []PartitionEvent{{Start: 100, End: 100}}
	if err := cfg.Validate(); err == nil {
		t.Error("empty partition window should error")
	}
	cfg.Partitions = []PartitionEvent{{Start: 100, End: 130}}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid replicated config rejected: %v", err)
	}
	cfg.Replicas = 1
	if err := cfg.Validate(); err == nil {
		t.Error("Partitions without Replicas > 1 should error")
	}
}

func TestReplicatedRunConverges(t *testing.T) {
	// Two replicas at lag 0: every domain resolves, both replicas make
	// decisions for their half of the namespace, deltas flow and apply,
	// and the replica views stay within one gossip round of each other.
	cfg := replicaCfg("DRR2-TTL/S_K", 2, 0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedResolves != 0 {
		t.Errorf("replicated run refused %d resolves", res.FailedResolves)
	}
	if len(res.ReplDecisions) != 2 {
		t.Fatalf("ReplDecisions = %v, want 2 entries", res.ReplDecisions)
	}
	var total uint64
	for r, n := range res.ReplDecisions {
		if n == 0 {
			t.Errorf("replica %d made no decisions", r)
		}
		total += n
	}
	if total != res.Sched.Decisions {
		t.Errorf("per-replica decisions sum %d != aggregate %d", total, res.Sched.Decisions)
	}
	if res.ReplDeltasApplied == 0 {
		t.Error("no deltas ever applied between replicas")
	}
	// The ledger views can differ only by entries created since the
	// last exchange: one gossip round plus the TTL spread of in-flight
	// decisions. 10 intervals is a deliberately loose ceiling — the
	// point is bounded staleness, not tightness.
	if res.ReplLedgerDivergenceSec > 10*cfg.ReplicationInterval+cfg.ConstantTTL {
		t.Errorf("ledger divergence %.1fs not bounded by gossip cadence", res.ReplLedgerDivergenceSec)
	}
	// Oracle weights are seeded identically and never re-estimated.
	if res.ReplMaxWeightDiff != 0 {
		t.Errorf("oracle-weight replicas diverged in weights by %v", res.ReplMaxWeightDiff)
	}
}

func TestReplicatedPartitionKeepsAnswering(t *testing.T) {
	// Cut every inter-replica link for 30s mid-run. Both replicas must
	// keep answering from local state (zero refused resolves, decisions
	// on both sides), and healing must trigger full anti-entropy.
	cfg := replicaCfg("DRR2-TTL/S_K", 2, 1)
	cfg.Partitions = []PartitionEvent{{Start: 600, End: 630}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedResolves != 0 {
		t.Errorf("partitioned replicas refused %d resolves", res.FailedResolves)
	}
	for r, n := range res.ReplDecisions {
		if n == 0 {
			t.Errorf("replica %d made no decisions across the partition", r)
		}
	}
	if res.ReplFullSyncs < 2 {
		// One snapshot per replica at first contact; the heal adds one
		// more round, so at least the initial pair must have happened.
		t.Errorf("ReplFullSyncs = %d, want >= 2 (initial + post-heal anti-entropy)", res.ReplFullSyncs)
	}
	if res.ReplDeltasApplied == 0 {
		t.Error("no deltas applied after heal")
	}

	// The same run without the partition must apply at least as many
	// deltas: cut rounds drop their flushes on the floor.
	cfg.Partitions = nil
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.FailedResolves != 0 {
		t.Errorf("clean replicated run refused %d resolves", clean.FailedResolves)
	}
}

func TestReplicatedEstimatorDrift(t *testing.T) {
	// Under the dynamic estimator each replica sees only its servers'
	// hit reports directly and learns the rest via gossip, so weight
	// views drift — but must stay finite and the run must stay healthy.
	cfg := replicaCfg("PRR2-TTL/K", 2, 5)
	cfg.OracleWeights = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedResolves != 0 {
		t.Errorf("estimator-driven replicated run refused %d resolves", res.FailedResolves)
	}
	if math.IsNaN(res.ReplMaxWeightDiff) || math.IsInf(res.ReplMaxWeightDiff, 0) {
		t.Errorf("weight divergence not finite: %v", res.ReplMaxWeightDiff)
	}
	if res.ReplDeltasApplied == 0 {
		t.Error("no deltas applied in estimator-driven run")
	}
}

func TestReplicatedRunDeterminism(t *testing.T) {
	cfg := replicaCfg("DRR2-TTL/S_K", 3, 2)
	cfg.Partitions = []PartitionEvent{{Start: 400, End: 460}}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sched.Decisions != b.Sched.Decisions ||
		a.ReplDeltasApplied != b.ReplDeltasApplied ||
		a.ReplFullSyncs != b.ReplFullSyncs ||
		a.ReplMaxWeightDiff != b.ReplMaxWeightDiff ||
		a.ReplLedgerDivergenceSec != b.ReplLedgerDivergenceSec ||
		a.TotalHits != b.TotalHits {
		t.Errorf("replicated runs of the same seed diverged:\n%+v\n%+v", a, b)
	}
	for r := range a.ReplDecisions {
		if a.ReplDecisions[r] != b.ReplDecisions[r] {
			t.Errorf("replica %d decisions %d vs %d across identical runs", r, a.ReplDecisions[r], b.ReplDecisions[r])
		}
	}
}

func TestSingleReplicaIsSinglePath(t *testing.T) {
	// Replicas 0 and 1 must take the unreplicated path and match it
	// exactly — the replication extension must not perturb the paper's
	// assembly.
	base := DefaultConfig("RR2")
	base.Duration = 900
	base.Warmup = 60
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, 1} {
		cfg := base
		cfg.Replicas = r
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sched.Decisions != ref.Sched.Decisions || res.TotalHits != ref.TotalHits ||
			res.MeanResponseTime != ref.MeanResponseTime {
			t.Errorf("Replicas=%d diverged from the single path", r)
		}
		if res.ReplDecisions != nil || res.ReplDeltasApplied != 0 {
			t.Errorf("Replicas=%d populated replication metrics", r)
		}
	}
}
