package sim

import (
	"errors"
	"fmt"
	"math"

	"dnslb/internal/core"
	"dnslb/internal/engine"
	"dnslb/internal/nameserver"
	"dnslb/internal/replication"
	"dnslb/internal/simcore"
	"dnslb/internal/stats"
	"dnslb/internal/webserver"
)

// The replicated assembly (Config.Replicas > 1): R authoritative DNS
// replicas, each with its own scheduler state, policy, estimator, and
// engine, joined by the same soft-state replication protocol the live
// servers gossip over (internal/replication) — here under virtual time
// with a controllable delivery lag and partition windows.
//
// Traffic splits by authority: domain d resolves through replica
// d mod R, and Web server i reports its load to replica i mod R; each
// replica learns the rest of the system only through the deltas it
// merges. Every replica therefore schedules on a view that is up to
// one gossip round (plus ReplicaLag) stale — ReplMaxWeightDiff and
// ReplLedgerDivergenceSec in Result measure exactly that staleness,
// and the partition scenarios measure the availability the protocol
// buys: a cut replica keeps answering from local state.

// replica is one authoritative DNS replica: engine + replication node.
type replica struct {
	eng       *engine.Engine
	node      *replication.Node
	policy    *core.Policy
	state     *core.State
	decisions uint64
}

// runReplicated executes one Replicas>1 simulation. The structure
// mirrors Run; the single-replica path never enters here, so its
// deterministic goldens are untouched.
func runReplicated(cfg Config) (*Result, error) {
	cluster, err := core.ScaledCluster(cfg.Servers, cfg.HeterogeneityPct, cfg.TotalCapacity)
	if err != nil {
		return nil, err
	}
	sc := simcore.New(cfg.Seed)
	prox, err := core.RingProximityConfig(cfg.Workload.Domains, cfg.Servers, cfg.GeoPreference, cfg.GeoBaseMS, cfg.GeoSpanMS)
	if err != nil {
		return nil, err
	}
	var geo *core.LatencyMatrix
	if prox != nil {
		geo = prox.Matrix
	}

	replicas := make([]*replica, cfg.Replicas)
	for r := range replicas {
		state, err := core.NewState(cluster, cfg.Workload.Domains)
		if err != nil {
			return nil, err
		}
		if err := state.SetWeights(cfg.Workload.OracleWeights()); err != nil {
			return nil, err
		}
		policyCfg := core.PolicyConfig{
			Name:        cfg.Policy,
			State:       state,
			Rand:        sc.Stream(fmt.Sprintf("policy-%d", r)),
			Now:         sc.Now,
			ConstantTTL: cfg.ConstantTTL,
			Proximity:   prox,
		}
		policy, err := core.NewPolicy(policyCfg)
		if err != nil {
			return nil, err
		}
		// Assigned only when enabled: a typed-nil concrete pointer in
		// the interface would enable feedback on oracle runs.
		var estimator core.LoadEstimator
		if !cfg.OracleWeights {
			estimator, err = core.NewLoadEstimator(cfg.Estimator, cfg.Workload.Domains, cfg.EstimatorAlpha)
			if err != nil {
				return nil, err
			}
		}
		rep := &replica{policy: policy, state: state}
		eng, err := engine.New(engine.Config{
			Policy:    policy,
			Clock:     engine.ClockFunc(sc.Now),
			Estimator: estimator,
			OnDecision: func(domain int, d core.Decision) {
				rep.decisions++
				rep.node.Observe(domain, d)
			},
		})
		if err != nil {
			return nil, err
		}
		rep.eng = eng
		rep.node, err = replication.NewNode(replication.NodeConfig{
			Origin: fmt.Sprintf("replica-%d", r),
			Epoch:  1,
			Engine: eng,
			Base:   replication.IdentityBase{},
		})
		if err != nil {
			return nil, err
		}
		replicas[r] = rep
	}

	servers := make([]*webserver.Server, cfg.Servers)
	for i := range servers {
		servers[i], err = webserver.New(cluster.Capacity(i), cfg.Workload.Domains)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Config: cfg}
	var sched failSlot

	// The traffic sink reads only membership standing, which is frozen
	// under replication (no faults/drains); replica 0's state stands in
	// for the ground truth.
	recov := newDrainTracker(cfg.Servers)
	sink := &trafficSink{sim: sc, state: replicas[0].state, servers: servers, geo: geo, recov: recov, res: res}
	tier, err := newReplicaTier(cfg, sc, replicas, res, sched.fail)
	if err != nil {
		return nil, err
	}

	if len(cfg.Trace) > 0 {
		if err := scheduleTrace(cfg, sc, sink.deliver, tier.resolve); err != nil {
			return nil, err
		}
	} else {
		scheduleClients(cfg, sc, sink.deliver, tier.resolve)
	}
	horizon := cfg.Warmup + cfg.Duration
	exch := &replicaExchange{sim: sc, cfg: cfg, replicas: replicas, fail: sched.fail, horizon: horizon}
	exch.install()
	util := &replicaUtilization{
		cfg:          cfg,
		sim:          sc,
		replicas:     replicas,
		servers:      servers,
		res:          res,
		fail:         sched.fail,
		horizon:      horizon,
		maxUtil:      stats.NewWindowedMax(cfg.Servers),
		utilSum:      make([]float64, cfg.Servers),
		subPerMetric: int(math.Round(cfg.MetricWindow / cfg.UtilizationInterval)),
	}
	util.install()
	if !cfg.OracleWeights {
		(&replicaEstimator{cfg: cfg, sim: sc, replicas: replicas, servers: servers, res: res, fail: sched.fail, horizon: horizon}).install()
	}

	sc.Run(horizon)
	if sched.err != nil {
		return nil, fmt.Errorf("sim: scheduling failed: %w", sched.err)
	}

	res.MaxUtil = util.maxUtil.Series()
	res.MeanServerUtil = make([]float64, cfg.Servers)
	var weightedResponse float64
	for i, sv := range servers {
		res.MeanServerUtil[i] = sv.MeanUtilization(sc.Now())
		res.TotalHits += sv.TotalHits()
		res.TotalPages += sv.TotalPages()
		weightedResponse += sv.MeanResponseTime() * float64(sv.TotalPages())
		if sv.MaxResponseTime() > res.MaxResponseTime {
			res.MaxResponseTime = sv.MaxResponseTime()
		}
	}
	if res.TotalPages > 0 {
		res.MeanResponseTime = weightedResponse / float64(res.TotalPages)
	}
	res.MeanLatencyMS = sink.meanLatencyMS()
	res.MeanTimeToDrain = recov.mean()
	tier.collect(res)
	res.Sched = aggregateSched(replicas)
	res.EventsFired = sc.EventsFired()
	collectReplStats(replicas, res)
	return res, nil
}

// aggregateSched folds the per-replica policy counters into one Stats
// as if a single scheduler had made every decision.
func aggregateSched(replicas []*replica) core.Stats {
	var out core.Stats
	out.PerClass = make(map[core.DomainClass]uint64)
	var ttlWeighted float64
	for _, rep := range replicas {
		s := rep.policy.Stats()
		if out.PerServer == nil {
			out.PerServer = make([]uint64, len(s.PerServer))
		}
		for i, v := range s.PerServer {
			out.PerServer[i] += v
		}
		for c, v := range s.PerClass {
			out.PerClass[c] += v
		}
		if s.Decisions > 0 {
			ttlWeighted += s.MeanTTL * float64(s.Decisions)
			if out.Decisions == 0 || s.MinTTL < out.MinTTL {
				out.MinTTL = s.MinTTL
			}
			if s.MaxTTL > out.MaxTTL {
				out.MaxTTL = s.MaxTTL
			}
		}
		out.Decisions += s.Decisions
	}
	if out.Decisions > 0 {
		out.MeanTTL = ttlWeighted / float64(out.Decisions)
	}
	return out
}

// collectReplStats fills the replication-specific Result fields: the
// protocol counters summed over nodes, and the horizon-time divergence
// between replica views (weights and hidden-load windows).
func collectReplStats(replicas []*replica, res *Result) {
	res.ReplDecisions = make([]uint64, len(replicas))
	for r, rep := range replicas {
		res.ReplDecisions[r] = rep.decisions
		s := rep.node.Stats()
		res.ReplDeltasApplied += s.DeltasApplied
		res.ReplDeltasDropped += s.DroppedDup + s.DroppedEpoch + s.DroppedSelf
		res.ReplFullSyncs += s.FullSyncsOut
	}
	for a := 0; a < len(replicas); a++ {
		for b := a + 1; b < len(replicas); b++ {
			wa, wb := replicas[a].state.Weights(), replicas[b].state.Weights()
			for j := range wa {
				if d := math.Abs(wa[j] - wb[j]); d > res.ReplMaxWeightDiff {
					res.ReplMaxWeightDiff = d
				}
			}
			n := replicas[a].state.Snapshot().Cluster().N()
			for i := 0; i < n; i++ {
				ea, eb := replicas[a].eng.MappingExpiry(i), replicas[b].eng.MappingExpiry(i)
				if d := math.Abs(ea - eb); d > res.ReplLedgerDivergenceSec {
					res.ReplLedgerDivergenceSec = d
				}
			}
		}
	}
}

// replicaTier is the cacheTier of the replicated assembly: one NS
// cache per domain as before, but misses resolve through the domain's
// authoritative replica (d mod R).
type replicaTier struct {
	sim      *simcore.Simulator
	replicas []*replica
	caches   []*nameserver.Cache
	res      *Result
	fail     func(error)
}

func newReplicaTier(cfg Config, sim *simcore.Simulator, replicas []*replica, res *Result, fail func(error)) (*replicaTier, error) {
	caches := make([]*nameserver.Cache, cfg.Workload.Domains)
	for j := range caches {
		c, err := nameserver.New(cfg.MinNSTTL)
		if err != nil {
			return nil, err
		}
		caches[j] = c
	}
	return &replicaTier{sim: sim, replicas: replicas, caches: caches, res: res, fail: fail}, nil
}

func (rt *replicaTier) resolve(domain int) int {
	now := rt.sim.Now()
	if server, ok := rt.caches[domain].Lookup(now); ok {
		return server
	}
	rep := rt.replicas[domain%len(rt.replicas)]
	d, err := rep.eng.Decide(domain)
	if err != nil {
		if errors.Is(err, core.ErrNoServers) {
			rt.res.FailedResolves++
			return -1
		}
		rt.fail(err)
		return 0
	}
	rt.res.AddressRequests++
	if effective := rt.caches[domain].Store(now, d.Server, d.TTL); effective > d.TTL {
		rep.eng.NoteMapping(d.Server, now+effective)
		rep.node.NoteLedger()
	}
	sn := rep.state.Snapshot()
	if sn.Draining(d.Server) || !sn.Member(d.Server) {
		rt.res.PostDrainMappings++
	}
	return d.Server
}

func (rt *replicaTier) collect(res *Result) {
	for _, c := range rt.caches {
		st := c.Stats()
		res.CacheHits += st.Hits
		res.ClampedTTLs += st.Clamped
	}
}

// replicaExchange is the virtual-time gossip fabric: every
// ReplicationInterval each node flushes its dirty state and the deltas
// fan out to every peer, delayed by ReplicaLag. While a partition
// window is open the flush still happens — clearing dirty state, like
// the live flushLoop shipping into a dead link — but every delta is
// dropped; the first round after healing leads with full anti-entropy
// snapshots from every replica, exactly the live reconnect behaviour.
type replicaExchange struct {
	sim      *simcore.Simulator
	cfg      Config
	replicas []*replica
	fail     func(error)
	horizon  float64

	pendingFull bool
}

func (x *replicaExchange) install() {
	x.pendingFull = true // first contact leads with a snapshot
	x.sim.Schedule(x.cfg.ReplicationInterval, x.round)
}

func (x *replicaExchange) linkUp(now float64) bool {
	for _, p := range x.cfg.Partitions {
		if now >= p.Start && now < p.End {
			return false
		}
	}
	return true
}

func (x *replicaExchange) round() {
	now := x.sim.Now()
	if !x.linkUp(now) {
		for _, rep := range x.replicas {
			rep.node.Flush()
		}
		x.pendingFull = true
	} else {
		if x.pendingFull {
			for r, rep := range x.replicas {
				x.fanOut(r, rep.node.Snapshot())
			}
			x.pendingFull = false
		}
		for r, rep := range x.replicas {
			x.fanOut(r, rep.node.Flush())
		}
	}
	if now < x.horizon {
		x.sim.Schedule(x.cfg.ReplicationInterval, x.round)
	}
}

func (x *replicaExchange) fanOut(from int, deltas []*replication.Delta) {
	for _, d := range deltas {
		d := d
		for to, rep := range x.replicas {
			if to == from {
				continue
			}
			node := rep.node
			apply := func() {
				if _, err := node.Merge(d); err != nil {
					x.fail(fmt.Errorf("replica merge from %s: %w", d.Origin, err))
				}
			}
			if x.cfg.ReplicaLag > 0 {
				x.sim.Schedule(x.cfg.ReplicaLag, apply)
			} else {
				apply()
			}
		}
	}
}

// replicaUtilization is the utilization/alarm collector of the
// replicated assembly: identical metric accounting, but server i's
// alarm protocol runs against its reporting replica (i mod R) — the
// other replicas learn the standing only through gossip.
type replicaUtilization struct {
	cfg      Config
	sim      *simcore.Simulator
	replicas []*replica
	servers  []*webserver.Server
	res      *Result
	fail     func(error)
	horizon  float64

	maxUtil      *stats.WindowedMax
	utilSum      []float64
	subCount     int
	subPerMetric int
}

func (u *replicaUtilization) install() {
	u.sim.Schedule(u.cfg.UtilizationInterval, u.sample)
}

func (u *replicaUtilization) sample() {
	now := u.sim.Now()
	measuring := now > u.cfg.Warmup
	for i, sv := range u.servers {
		util := sv.CloseWindow(now)
		rep := u.replicas[i%len(u.replicas)]
		if u.cfg.AlarmThreshold > 0 {
			over := util > u.cfg.AlarmThreshold
			if over != rep.state.Alarmed(i) {
				if err := rep.eng.SetAlarm(i, over); err != nil {
					u.fail(err)
				}
				u.res.AlarmSignals++
			}
		}
		if measuring {
			u.utilSum[i] += util
		}
	}
	if measuring {
		u.subCount++
		if u.subCount == u.subPerMetric {
			for i := range u.utilSum {
				u.maxUtil.Observe(i, u.utilSum[i]/float64(u.subPerMetric))
				u.utilSum[i] = 0
			}
			u.subCount = 0
		}
	}
	if now < u.horizon {
		u.sim.Schedule(u.cfg.UtilizationInterval, u.sample)
	}
}

// replicaEstimator closes the hidden-load feedback loop per replica:
// server i's per-domain hit report reaches only its reporting replica
// (i mod R) directly; every other replica receives the same hits one
// gossip round later as replicated increments. Each replica rolls its
// own estimate — the weight views drift apart by exactly the traffic
// that is still in flight between replicas.
type replicaEstimator struct {
	cfg      Config
	sim      *simcore.Simulator
	replicas []*replica
	servers  []*webserver.Server
	res      *Result
	fail     func(error)
	horizon  float64

	loss *simcore.Stream
}

func (c *replicaEstimator) install() {
	c.loss = c.sim.Stream("reportloss")
	c.sim.Schedule(c.cfg.EstimatorInterval, c.collect)
}

func (c *replicaEstimator) collect() {
	for i, sv := range c.servers {
		hits := sv.TakeDomainHits()
		if c.cfg.ReportLossProb > 0 && c.loss.Float64() < c.cfg.ReportLossProb {
			c.res.LostReports++
			continue
		}
		rep := c.replicas[i%len(c.replicas)]
		for j, h := range hits {
			if h > 0 {
				rep.eng.RecordHits(j, h)
				rep.node.AddHits(j, h)
			}
		}
	}
	for _, rep := range c.replicas {
		if err := rep.eng.RollEstimates(c.cfg.EstimatorInterval); err != nil {
			c.fail(err)
		}
	}
	if c.sim.Now() < c.horizon {
		c.sim.Schedule(c.cfg.EstimatorInterval, c.collect)
	}
}
