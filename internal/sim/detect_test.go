package sim

import (
	"testing"
)

func TestDetectionValidation(t *testing.T) {
	for _, d := range []DetectionConfig{
		{Kind: "sonar", Interval: 5, FailN: 3, RiseM: 2},
		{Kind: DetectProbe, Interval: 0, FailN: 3, RiseM: 2},
		{Kind: DetectProbe, Interval: 5, FailN: 0, RiseM: 2},
		{Kind: DetectProbe, Interval: 5, FailN: 3, RiseM: 0},
		{Kind: DetectReport, Interval: 5, K: 0},
	} {
		cfg := DefaultConfig("RR")
		d := d
		cfg.Detection = &d
		if err := cfg.Validate(); err == nil {
			t.Errorf("detection %+v accepted", d)
		}
	}
	cfg := DefaultConfig("RR")
	cfg.Detection = &DetectionConfig{Kind: DetectReport, Interval: 8, K: 3}
	cfg.Replicas = 2
	cfg.ReplicationInterval = 1
	if err := cfg.Validate(); err == nil {
		t.Error("Detection with Replicas > 1 accepted")
	}
}

func TestDetectionDelayBounds(t *testing.T) {
	for _, tc := range []struct {
		name           string
		det            DetectionConfig
		downLo, downHi float64
		upLo, upHi     float64
	}{
		{
			name:   "probe",
			det:    DetectionConfig{Kind: DetectProbe, Interval: 5, FailN: 3, RiseM: 2},
			downLo: 10, downHi: 15, // (FailN-1)·I ≤ delay < FailN·I
			upLo: 5, upHi: 10, // (RiseM-1)·I ≤ delay < RiseM·I
		},
		{
			name:   "report",
			det:    DetectionConfig{Kind: DetectReport, Interval: 8, K: 3},
			downLo: 16, downHi: 24, // (K-1)·I ≤ delay < K·I
			upLo: 0, upHi: 8, // first report after restart
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := faultCfg("DRR2-TTL/S_K", 400, 600)
			det := tc.det
			cfg.Detection = &det
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.DetectedCrashes != 1 {
				t.Fatalf("DetectedCrashes = %d, want 1", res.DetectedCrashes)
			}
			if d := res.MeanDetectionDelay; d < tc.downLo || d >= tc.downHi {
				t.Errorf("detection delay %v outside [%v,%v)", d, tc.downLo, tc.downHi)
			}
			if d := res.MeanReviveDelay; d < tc.upLo || d >= tc.upHi {
				t.Errorf("revive delay %v outside [%v,%v)", d, tc.upLo, tc.upHi)
			}
		})
	}
}

// TestDetectionLagCostsPages: the same outage loses at least as many
// pages under delayed detection as under instant knowledge — during
// the detection window the scheduler keeps handing out the dead
// server to fresh resolutions, not just to cached mappings.
func TestDetectionLagCostsPages(t *testing.T) {
	cfg := faultCfg("DRR2-TTL/S_K", 400, 600)
	instant, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det := cfg
	det.Detection = &DetectionConfig{Kind: DetectReport, Interval: 60, K: 3}
	delayed, err := Run(det)
	if err != nil {
		t.Fatal(err)
	}
	if delayed.DeadServerHits <= instant.DeadServerHits {
		t.Errorf("delayed detection lost %d dead-server hits, instant lost %d — lag should cost pages",
			delayed.DeadServerHits, instant.DeadServerHits)
	}
}

// TestDetectionSupersededCrash: an outage shorter than the detection
// floor is never acted on — the recovery event cancels the scheduled
// exclusion, and the scheduler's view never flips.
func TestDetectionSupersededCrash(t *testing.T) {
	cfg := faultCfg("RR", 400, 10) // 10 s outage
	cfg.Detection = &DetectionConfig{Kind: DetectProbe, Interval: 30, FailN: 3, RiseM: 1}
	res, err := Run(cfg) // detection floor (FailN-1)·30 = 60 s > outage
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedCrashes != 0 {
		t.Errorf("DetectedCrashes = %d for an outage below the detection floor", res.DetectedCrashes)
	}
	if res.MeanDetectionDelay != 0 || res.MeanReviveDelay != 0 {
		t.Errorf("delays %v/%v recorded without a detection", res.MeanDetectionDelay, res.MeanReviveDelay)
	}
	// Ground truth still cost pages during those 10 seconds.
	if res.DeadServerHits == 0 {
		t.Error("no dead-server hits during an undetected outage")
	}
}

func TestDetectionDeterminism(t *testing.T) {
	cfg := faultCfg("PRR2-TTL/K", 400, 600)
	cfg.Detection = &DetectionConfig{Kind: DetectProbe, Interval: 5, FailN: 3, RiseM: 2}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeadServerHits != b.DeadServerHits || a.MeanDetectionDelay != b.MeanDetectionDelay ||
		a.MeanReviveDelay != b.MeanReviveDelay || a.TotalHits != b.TotalHits {
		t.Errorf("same seed diverged: %+v vs %+v",
			[3]float64{float64(a.DeadServerHits), a.MeanDetectionDelay, a.MeanReviveDelay},
			[3]float64{float64(b.DeadServerHits), b.MeanDetectionDelay, b.MeanReviveDelay})
	}
}
