package sim

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

// fingerprint reduces a run's observable output — scheduler decisions,
// cache behaviour, event count, the full max-utilization series and
// per-server decision counts — to one hash, so any behavioural drift
// in the single-threaded path shows up as a mismatch.
func fingerprint(res *Result) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d %d %d %d %d %v %v %.9f\n",
		res.AddressRequests, res.CacheHits, res.TotalHits, res.TotalPages,
		res.EventsFired, res.MaxUtil.Values(), res.Sched.PerServer, res.Sched.MeanTTL)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Golden fingerprints recorded from the pre-concurrency (single-mutex)
// implementation at seed 7, 900 s. The lock-free scheduler must keep
// single-threaded simulation output byte-identical: the paper's
// figures depend on it, and TestTraceReplayMatchesLiveRun-style replay
// equivalence does too.
const (
	goldenDRR2  = "c28908b60873ca8014fe94b473f0c10519ca23f94c96a8d4bf4f202a7314ecab"
	goldenPRR2K = "78897c26fef92290d53cfda682c7dcadd662a8738493742dafd34f107f34bfb7"
)

func goldenConfig(policy string) Config {
	cfg := DefaultConfig(policy)
	cfg.Duration = 900
	cfg.Seed = 7
	return cfg
}

// TestSingleThreadedDeterminismGolden asserts the simulator's
// single-threaded output is byte-identical to the pre-refactor
// implementation, for a deterministic (DRR2) and a probabilistic
// (PRR2, RNG-order-sensitive) policy.
func TestSingleThreadedDeterminismGolden(t *testing.T) {
	for _, tc := range []struct {
		policy string
		want   string
	}{
		{"DRR2-TTL/S_K", goldenDRR2},
		{"PRR2-TTL/K", goldenPRR2K},
	} {
		res, err := Run(goldenConfig(tc.policy))
		if err != nil {
			t.Fatalf("%s: %v", tc.policy, err)
		}
		if got := fingerprint(res); got != tc.want {
			t.Errorf("%s: output drifted from pre-refactor golden\n got %s\nwant %s",
				tc.policy, got, tc.want)
		}
	}
}

// TestParallelReplicationsMatchSequential asserts the parallel
// replication runner produces the exact results of the sequential one,
// replication by replication — parallelism is a wall-clock
// optimization, never a behavioural one.
func TestParallelReplicationsMatchSequential(t *testing.T) {
	cfg := goldenConfig("PRR2-TTL/K")
	cfg.Duration = 300
	const reps = 4
	seq, err := RunReplications(cfg, reps)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunReplicationsParallel(cfg, reps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel returned %d results, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if got, want := fingerprint(par[i]), fingerprint(seq[i]); got != want {
			t.Errorf("replication %d: parallel output %s != sequential %s", i, got, want)
		}
	}
}

// TestRunRepeatable asserts two identical runs in the same process
// produce identical output (no hidden shared state between runs).
func TestRunRepeatable(t *testing.T) {
	a, err := Run(goldenConfig("PRR2-TTL/K"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(goldenConfig("PRR2-TTL/K"))
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a) != fingerprint(b) {
		t.Error("identical configs produced different output")
	}
}
