package sim

import (
	"math"

	"dnslb/internal/nameserver"
	"dnslb/internal/simcore"
)

// flashRampSeconds spreads a flash crowd's client arrivals over its
// first seconds instead of one zero-width impulse: real flash crowds
// ramp in seconds-to-minutes, and the stagger keeps the event heap
// from replaying a million same-instant wakes.
const flashRampSeconds = 10.0

// flashInjector installs flash-crowd events: at each FlashEvent's time
// a burst of new clients joins one domain for its duration, resolving
// through fresh name-server caches. From the DNS's viewpoint this is a
// new resolver population: the shared per-domain cache of the normal
// tier would absorb the whole crowd behind one cached mapping, but
// fresh resolvers miss immediately — the decision burst that the
// predictive estimator's NS-cache model forecasts from, and that the
// reactive estimator cannot see until the hits arrive in a report.
//
// When no flash crowds are configured the injector schedules nothing
// and draws from no stream, leaving existing runs (and the
// determinism goldens) untouched.
type flashInjector struct {
	cfg     Config
	sim     *simcore.Simulator
	tier    *cacheTier
	deliver func(domain, server, hits int)
	fail    func(error)

	caches []*nameserver.Cache
}

func (f *flashInjector) install() {
	if len(f.cfg.FlashCrowds) == 0 {
		return
	}
	think := f.sim.Stream("flash-think")
	hitsStream := f.sim.Stream("flash-hits")
	pages := f.sim.Stream("flash-pages")
	ramp := f.sim.Stream("flash-ramp")
	thinks := f.cfg.Workload.ThinkTimes()
	for _, ev := range f.cfg.FlashCrowds {
		ev := ev
		// A flash crowd is external traffic: even a domain the
		// perturbed workload starved can flash. Fall back to the
		// nominal mean think time for it.
		meanThink := thinks[ev.Domain]
		if math.IsInf(meanThink, 1) {
			meanThink = f.cfg.Workload.MeanThinkTime
		}
		resolvers := make([]*nameserver.Cache, ev.Resolvers)
		for r := range resolvers {
			c, err := nameserver.New(f.cfg.MinNSTTL)
			if err != nil {
				f.fail(err)
				return
			}
			resolvers[r] = c
		}
		f.caches = append(f.caches, resolvers...)
		end := ev.Time + ev.Duration
		for c := 0; c < ev.Clients; c++ {
			cache := resolvers[c%ev.Resolvers]
			cl := &client{domain: ev.Domain}
			var wake func()
			wake = func() {
				now := f.sim.Now()
				if now >= end {
					return // the crowd dissolved
				}
				if cl.pagesLeft == 0 {
					cl.server = f.tier.resolveVia(cache, cl.domain)
					cl.pagesLeft = pages.Geometric(f.cfg.Workload.PagesPerSession)
				}
				hits := hitsStream.UniformInt(f.cfg.Workload.HitsMin, f.cfg.Workload.HitsMax)
				f.deliver(cl.domain, cl.server, hits)
				cl.pagesLeft--
				f.sim.Schedule(think.Exp(meanThink), wake)
			}
			stagger := ramp.Float64() * math.Min(flashRampSeconds, ev.Duration)
			f.sim.ScheduleAt(ev.Time+stagger, wake)
		}
	}
}

// collect folds the flash resolvers' cache counters into the result,
// like the normal tier's.
func (f *flashInjector) collect(res *Result) {
	for _, c := range f.caches {
		st := c.Stats()
		res.CacheHits += st.Hits
		res.ClampedTTLs += st.Clamped
	}
}
