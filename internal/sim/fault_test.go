package sim

import (
	"testing"
)

// faultCfg is a short run with one outage of server 0 in the middle.
func faultCfg(policy string, start, duration float64) Config {
	cfg := DefaultConfig(policy)
	cfg.Duration = 1800
	cfg.Warmup = 100
	cfg.Faults = Outage(0, start, duration)
	return cfg
}

func TestFaultValidation(t *testing.T) {
	cfg := DefaultConfig("RR")
	cfg.Faults = []FaultEvent{{Time: -1, Server: 0, Down: true}}
	if err := cfg.Validate(); err == nil {
		t.Error("negative fault time should error")
	}
	cfg.Faults = []FaultEvent{{Time: 10, Server: 7, Down: true}}
	if err := cfg.Validate(); err == nil {
		t.Error("out-of-range fault server should error")
	}
	cfg.Faults = nil
	cfg.ReportLossProb = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("report loss probability > 1 should error")
	}
}

func TestOutageHelper(t *testing.T) {
	evs := Outage(3, 100, 50)
	if len(evs) != 2 || !evs[0].Down || evs[1].Down ||
		evs[0].Time != 100 || evs[1].Time != 150 || evs[0].Server != 3 {
		t.Errorf("Outage = %+v", evs)
	}
}

func TestCrashExcludesServerFromNewDecisions(t *testing.T) {
	// Crash server 0 for the whole measured period: the failure-aware
	// scheduler must route zero *new* decisions to it after the crash.
	// TTL-pinned cached mappings still hit it, which is exactly the
	// pinned-load loss the metrics report.
	for _, policy := range []string{"DRR2-TTL/S_K", "RR2", "PRR2-TTL/K"} {
		cfg := faultCfg(policy, 200, 1e9)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		// Decisions to server 0 can only stem from the 200 pre-crash
		// seconds. Re-run with the crash from t=0: now there must be none.
		preCrash := res.Sched.PerServer[0]
		cfg0 := faultCfg(policy, 0, 1e9)
		res0, err := Run(cfg0)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if got := res0.Sched.PerServer[0]; got != 0 {
			t.Errorf("%s: %d new decisions routed to a down server", policy, got)
		}
		if preCrash == 0 {
			t.Errorf("%s: expected some pre-crash decisions to server 0", policy)
		}
		if res0.DeadServerHits != 0 {
			t.Errorf("%s: dead-server hits with no mapping ever pointing there", policy)
		}
	}
}

func TestTTLPinnedLossAndDrain(t *testing.T) {
	cfg := faultCfg("RR2", 600, 400)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadServerHits == 0 {
		t.Error("a mid-run crash under constant TTL 240s must strand pinned load")
	}
	if res.LostPages == 0 {
		t.Error("pages sent to the dead server must count as lost")
	}
	if res.MeanTimeToDrain <= 0 {
		t.Error("recovery must record a time-to-drain")
	}
	// Sanity: a faultless run of the same config loses nothing.
	cfg.Faults = nil
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.DeadServerHits != 0 || clean.LostPages != 0 || clean.FailedResolves != 0 {
		t.Errorf("faultless run reported losses: %+v", clean)
	}
}

func TestPinnedLossGrowsWithOutage(t *testing.T) {
	// Pinned-load loss must be reported for constant-TTL and adaptive
	// policies alike and grow with the outage duration (longer outage =
	// more mappings stranded past their residual TTL).
	loss := func(policy string, duration float64) float64 {
		cfg := DefaultConfig(policy)
		cfg.Duration = 3600
		cfg.Warmup = 100
		cfg.Faults = Outage(0, 600, duration)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalHits == 0 {
			t.Fatal("no hits served")
		}
		return float64(res.DeadServerHits) / float64(res.DeadServerHits+res.TotalHits)
	}
	for _, policy := range []string{"RR2", "DRR2-TTL/S_K"} {
		short := loss(policy, 120)
		long := loss(policy, 1200)
		if short <= 0 || long <= 0 {
			t.Errorf("%s: pinned loss not reported (short %v, long %v)", policy, short, long)
		}
		if long <= short {
			t.Errorf("%s: loss %v for a 1200s outage, want above %v (120s outage)", policy, long, short)
		}
	}
}

func TestAllServersDown(t *testing.T) {
	// Crash the whole cluster: resolves fail explicitly and pages are
	// lost, but the run completes without error.
	cfg := DefaultConfig("DRR2-TTL/S_K")
	cfg.Duration = 600
	cfg.Warmup = 0
	for i := 0; i < cfg.Servers; i++ {
		cfg.Faults = append(cfg.Faults, FaultEvent{Time: 0, Server: i, Down: true})
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedResolves == 0 {
		t.Error("want failed resolves with the whole cluster down")
	}
	if res.AddressRequests != 0 {
		t.Errorf("%d address requests answered with no live server", res.AddressRequests)
	}
	if res.TotalHits != 0 {
		t.Errorf("%d hits served by dead servers", res.TotalHits)
	}
	if res.LostPages == 0 {
		t.Error("want lost pages with the whole cluster down")
	}
}

func TestReportLoss(t *testing.T) {
	cfg := DefaultConfig("DRR2-TTL/S_K")
	cfg.Duration = 1800
	cfg.Warmup = 100
	cfg.OracleWeights = false
	cfg.ReportLossProb = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LostReports == 0 {
		t.Error("want lost reports at loss probability 0.5")
	}
	// The estimator still functions on the surviving reports.
	cfg.ReportLossProb = 0
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.LostReports != 0 {
		t.Errorf("lost %d reports at probability 0", clean.LostReports)
	}
}

func TestFaultRunDeterminism(t *testing.T) {
	cfg := faultCfg("DRR2-TTL/S_K", 300, 500)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeadServerHits != b.DeadServerHits || a.LostPages != b.LostPages ||
		a.MeanTimeToDrain != b.MeanTimeToDrain || a.TotalHits != b.TotalHits {
		t.Error("fault-injected runs must stay deterministic for a fixed seed")
	}
}
