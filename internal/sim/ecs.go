package sim

import (
	"errors"
	"fmt"
	"net/netip"

	"dnslb/internal/engine"
)

// Resolver/client misalignment extension (EDNS-Client-Subnet).
//
// The paper's model assumes each connected domain resolves through a
// name server inside that domain, so the resolver's address identifies
// the clients' location. Real deployments broke that assumption long
// ago: public resolvers and centralized corporate DNS put the querying
// address far from the clients it serves, which is exactly the problem
// RFC 7871 ECS exists to repair. This extension quantifies the damage
// and the repair: a configured fraction of domains resolve through a
// name server located in a different (shifted) domain, and the engine
// receives either the bare resolver address (no ECS — the misdirected
// baseline) or the clients' true subnet in an ECS option.
//
// Addressing scheme: domain d owns the /24 network 10.(d>>8).(d&255).0
// — the same 10.x.y.z convention the live load generator uses. The
// resolver for domain d sits at host .1 of its own domain's network;
// the clients' ECS option carries the domain's /24. The engine's
// Mapper decodes octets 1–2 back to the domain index, so aligned
// queries classify identically with and without ECS — only misaligned
// resolvers make the two paths diverge.

// ECSMisalignConfig parameterizes the extension (Config.ECSMisalign).
type ECSMisalignConfig struct {
	// Fraction of domains whose resolver is misaligned (located in a
	// different domain), in [0,1]. The first round(Fraction×D) domains
	// are misaligned — under the Zipf-ranked workload those are the
	// busiest domains, the worst case for proximity policies.
	Fraction float64
	// Shift is how many domains away a misaligned resolver sits
	// (resolver of domain d is located at domain (d+Shift) mod D);
	// 0 defaults to D/2, the antipode on the ring geography.
	Shift int
	// UseECS makes the resolvers forward the clients' true /24 subnet
	// in an RFC 7871 ECS option; false sends bare resolver-address
	// queries (the misdirected baseline).
	UseECS bool
}

func (c *ECSMisalignConfig) validate(domains int) error {
	if c.Fraction < 0 || c.Fraction > 1 {
		return errors.New("sim: ECSMisalign.Fraction must be within [0,1]")
	}
	if c.Shift < 0 || c.Shift >= domains {
		return fmt.Errorf("sim: ECSMisalign.Shift %d out of [0,%d)", c.Shift, domains)
	}
	if domains > 1<<16 {
		return fmt.Errorf("sim: ECSMisalign supports at most %d domains, workload has %d", 1<<16, domains)
	}
	return nil
}

// ecsDomainAddr returns the resolver host address of domain d's
// network: 10.(d>>8).(d&255).1.
func ecsDomainAddr(d int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(d >> 8), byte(d), 1})
}

// ecsDomainPrefix returns domain d's client network as the /24 an ECS
// option would carry: 10.(d>>8).(d&255).0/24.
func ecsDomainPrefix(d int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(d >> 8), byte(d), 0}), 24)
}

// ecsDomainMapper returns the engine Mapper decoding the addressing
// scheme: octets 1–2 of a 10.x.y.z address are the domain index
// (mod domains, so arbitrary addresses still classify somewhere).
func ecsDomainMapper(domains int) func(addr netip.Addr) int {
	return func(addr netip.Addr) int {
		if !addr.IsValid() {
			return 0
		}
		b := addr.As4()
		return (int(b[1])<<8 | int(b[2])) % domains
	}
}

// ecsResolvers models the name-server population's query-side identity:
// which domain each domain's resolver is actually located in, and
// whether it forwards ECS. It sits between the cache tier and the
// engine, replacing the direct Decide(domain) call with a DecideQuery
// carrying the addresses a real authoritative server would see.
type ecsResolvers struct {
	misaligned []bool // domain → resolver located elsewhere?
	shift      int
	useECS     bool
	domains    int

	queries    uint64 // DecideQuery calls
	misrouted  uint64 // decisions classified to the wrong domain
	ecsCarried uint64 // queries that carried an ECS option
}

// newECSResolvers builds the population: the first round(Fraction×D)
// domains are misaligned by Shift (default D/2).
func newECSResolvers(cfg *ECSMisalignConfig, domains int) *ecsResolvers {
	shift := cfg.Shift
	if shift == 0 {
		shift = domains / 2
	}
	n := int(cfg.Fraction*float64(domains) + 0.5)
	if n > domains {
		n = domains
	}
	mis := make([]bool, domains)
	for d := 0; d < n; d++ {
		mis[d] = true
	}
	return &ecsResolvers{
		misaligned: mis,
		shift:      shift,
		useECS:     cfg.UseECS,
		domains:    domains,
	}
}

// decide answers one address request for domain through the engine's
// query-context path, exactly as the live server would see it: the
// query arrives from the domain's resolver address (possibly located
// in a shifted domain), optionally carrying the clients' true subnet
// as ECS.
func (er *ecsResolvers) decide(eng *engine.Engine, domain int) (engine.QueryDecision, error) {
	resolverDomain := domain
	if er.misaligned[domain] {
		resolverDomain = (domain + er.shift) % er.domains
	}
	qc := engine.QueryContext{Resolver: ecsDomainAddr(resolverDomain)}
	if er.useECS {
		qc.ClientSubnet = ecsDomainPrefix(domain)
	}
	qd, err := eng.DecideQuery(qc)
	if err != nil {
		return qd, err
	}
	er.queries++
	if qc.ClientSubnet.IsValid() {
		er.ecsCarried++
	}
	if qd.Domain != domain {
		er.misrouted++
	}
	return qd, nil
}

// collect folds the resolver-side counters into the result.
func (er *ecsResolvers) collect(res *Result) {
	res.ECSQueries = er.queries
	res.ECSCarried = er.ecsCarried
	res.ECSMisrouted = er.misrouted
}
