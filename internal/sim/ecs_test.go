package sim

import (
	"net/netip"
	"testing"
)

func TestECSDomainAddressing(t *testing.T) {
	mapper := ecsDomainMapper(300)
	for _, d := range []int{0, 1, 99, 255, 256, 299} {
		if got := mapper(ecsDomainAddr(d)); got != d {
			t.Errorf("mapper(resolver of %d) = %d", d, got)
		}
		if got := mapper(ecsDomainPrefix(d).Addr()); got != d {
			t.Errorf("mapper(subnet of %d) = %d", d, got)
		}
	}
	if !ecsDomainPrefix(7).Contains(netip.AddrFrom4([4]byte{10, 0, 7, 200})) {
		t.Error("domain 7's /24 should contain its client hosts")
	}
	if got := mapper(netip.Addr{}); got != 0 {
		t.Errorf("mapper(invalid) = %d, want 0", got)
	}
}

func TestECSMisalignValidation(t *testing.T) {
	cfg := quickCfg("RR")
	cfg.ECSMisalign = &ECSMisalignConfig{Fraction: 1.5}
	if err := cfg.Validate(); err == nil {
		t.Error("Fraction > 1 should error")
	}
	cfg.ECSMisalign = &ECSMisalignConfig{Fraction: 0.5, Shift: cfg.Workload.Domains}
	if err := cfg.Validate(); err == nil {
		t.Error("Shift >= Domains should error")
	}
	cfg.ECSMisalign = &ECSMisalignConfig{Fraction: 0.5}
	cfg.Replicas = 2
	cfg.ReplicationInterval = 10
	if err := cfg.Validate(); err == nil {
		t.Error("ECSMisalign with Replicas > 1 should error")
	}
}

// TestECSMisalignment is the misalignment experiment: under a
// proximity-first policy, misaligned resolvers without ECS misroute
// the affected domains' traffic to far servers; forwarding the
// clients' true subnet restores the aligned latency.
func TestECSMisalignment(t *testing.T) {
	base := quickCfg("DRR2-TTL/S_K")
	base.GeoPreference = 1 // proximity-first: latency exposes misrouting
	run := func(mis *ECSMisalignConfig) *Result {
		cfg := base
		cfg.ECSMisalign = mis
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	aligned := run(&ECSMisalignConfig{Fraction: 0})
	misNoECS := run(&ECSMisalignConfig{Fraction: 0.5})
	misECS := run(&ECSMisalignConfig{Fraction: 0.5, UseECS: true})

	if aligned.ECSQueries == 0 || misNoECS.ECSQueries == 0 || misECS.ECSQueries == 0 {
		t.Fatal("resolver population model made no decisions")
	}
	// Classification ground truth: without misalignment or with ECS the
	// engine always recovers the clients' true domain; misaligned
	// resolvers without ECS never do for the affected half.
	if aligned.ECSMisrouted != 0 {
		t.Errorf("aligned run misrouted %d decisions", aligned.ECSMisrouted)
	}
	if misECS.ECSMisrouted != 0 {
		t.Errorf("ECS run misrouted %d decisions, want 0", misECS.ECSMisrouted)
	}
	if misNoECS.ECSMisrouted == 0 {
		t.Error("misaligned run without ECS should misroute")
	}
	if misECS.ECSCarried != misECS.ECSQueries {
		t.Errorf("ECS run carried the option on %d/%d queries", misECS.ECSCarried, misECS.ECSQueries)
	}
	if misNoECS.ECSCarried != 0 {
		t.Errorf("no-ECS run carried the option on %d queries", misNoECS.ECSCarried)
	}
	// Latency consequence: misrouted proximity decisions aim at servers
	// near the resolver, not the clients, so the traffic-weighted
	// client latency degrades; ECS repairs it back to aligned levels.
	if misNoECS.MeanLatencyMS <= aligned.MeanLatencyMS {
		t.Errorf("misaligned latency %v should exceed aligned %v",
			misNoECS.MeanLatencyMS, aligned.MeanLatencyMS)
	}
	if misECS.MeanLatencyMS >= misNoECS.MeanLatencyMS {
		t.Errorf("ECS latency %v should beat misaligned %v",
			misECS.MeanLatencyMS, misNoECS.MeanLatencyMS)
	}
}

// TestECSMisalignOffIsByteIdentical locks the no-extension guarantee:
// a nil ECSMisalign leaves the decision stream untouched, so the run's
// fingerprint-relevant counters match a plain run exactly.
func TestECSMisalignOffIsByteIdentical(t *testing.T) {
	cfg := quickCfg("DRR2-TTL/S_K")
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.AddressRequests != again.AddressRequests || plain.TotalHits != again.TotalHits ||
		plain.EventsFired != again.EventsFired {
		t.Fatal("identical configs diverged")
	}
	if plain.ECSQueries != 0 || plain.ECSMisrouted != 0 || plain.ECSCarried != 0 {
		t.Error("ECS counters must stay zero without the extension")
	}
}
