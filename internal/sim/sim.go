package sim

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"dnslb/internal/core"
	"dnslb/internal/nameserver"
	"dnslb/internal/simcore"
	"dnslb/internal/stats"
	"dnslb/internal/webserver"
)

// Result holds the outputs of one simulation run.
type Result struct {
	// Config echoes the run's configuration.
	Config Config
	// MaxUtil is the per-window maximum server utilization series
	// after warm-up — the paper's primary metric source.
	MaxUtil *stats.Series
	// MeanServerUtil is each server's mean utilization over the
	// measured period.
	MeanServerUtil []float64
	// AddressRequests counts DNS scheduler decisions (NS cache misses).
	AddressRequests uint64
	// CacheHits counts NS lookups answered from cache.
	CacheHits uint64
	// TotalHits and TotalPages count the data requests served.
	TotalHits  uint64
	TotalPages uint64
	// AlarmSignals counts alarm state transitions sent to the DNS.
	AlarmSignals uint64
	// MeanResponseTime is the traffic-weighted mean page response time
	// (queue wait + service) across servers, in seconds — a secondary
	// metric: overload shows up as unbounded queueing delay.
	MeanResponseTime float64
	// MaxResponseTime is the worst page response time at any server.
	MaxResponseTime float64
	// MeanLatencyMS is the traffic-weighted mean client-to-server
	// network distance under the geo extension (0 unless GeoPreference
	// or the geo matrix is enabled).
	MeanLatencyMS float64
	// Sched is the scheduling policy's own counters.
	Sched core.Stats
	// ClampedTTLs counts mappings whose TTL a non-cooperative NS raised.
	ClampedTTLs uint64
	// EventsFired is the engine's executed event count.
	EventsFired uint64

	// DeadServerHits counts hits addressed to a server while it was
	// down: the TTL-pinned traffic cached mappings keep sending to a
	// dead server until they expire. Every such page is also lost.
	DeadServerHits uint64
	// LostPages counts page bursts that could not be served: their
	// target server was down, or no server was available at resolve
	// time.
	LostPages uint64
	// FailedResolves counts address requests the scheduler answered
	// with "no server available" (the whole cluster was down).
	FailedResolves uint64
	// MeanTimeToDrain is the mean delay, over recovery events, from a
	// server coming back until client traffic reaches it again — how
	// long stale cached mappings and pointer state keep a recovered
	// server idle. 0 when no recovery was observed (or traffic never
	// returned).
	MeanTimeToDrain float64
	// LostReports counts hidden-load reports dropped by the
	// report-loss fault model.
	LostReports uint64

	// DrainedServerHits counts hits served by a draining server — the
	// hidden load its pre-drain cached mappings kept directing at it
	// while the drain window was open.
	DrainedServerHits uint64
	// PostDrainMappings counts scheduler decisions that chose a
	// draining or removed server; it must be zero when the policy
	// honours membership.
	PostDrainMappings uint64
	// PostRemovalHits counts hits addressed to a server after it left
	// membership — sessions outliving the drain window. Those pages
	// are lost (the machine is gone).
	PostRemovalHits uint64
}

// ProbMaxUnder returns the fraction of measurement windows in which
// every server's utilization stayed below the level x — the paper's
// cumulative frequency of the maximum utilization.
func (r *Result) ProbMaxUnder(x float64) float64 { return r.MaxUtil.CDF(x) }

// ProbMaxUnderBatchCI estimates a within-run confidence interval for
// Prob(MaxUtilization < x) by the method of batch means over the
// window indicator series — the single-run analogue of the paper's
// "95% confidence interval within 4% of the mean" statement.
func (r *Result) ProbMaxUnderBatchCI(x, level float64) stats.Interval {
	vals := r.MaxUtil.Values()
	indicators := make([]float64, len(vals))
	for i, v := range vals {
		if v <= x {
			indicators[i] = 1
		}
	}
	return stats.BatchMeansCI(indicators, 10, level)
}

// AddressRate returns scheduler decisions per virtual second.
func (r *Result) AddressRate() float64 {
	return float64(r.AddressRequests) / (r.Config.Duration + r.Config.Warmup)
}

// ControlledFraction returns the fraction of page requests whose
// routing the DNS directly decided — the paper's observation that the
// scheduler controls only a small percentage of the requests.
func (r *Result) ControlledFraction() float64 {
	if r.TotalPages == 0 {
		return 0
	}
	return float64(r.AddressRequests) / float64(r.TotalPages)
}

// client is one Web client: it belongs to a domain, holds the
// session's server mapping, and cycles think → page burst.
type client struct {
	domain    int
	server    int
	pagesLeft int
}

// Run executes one simulation and returns its results.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cluster, err := core.ScaledCluster(cfg.Servers, cfg.HeterogeneityPct, cfg.TotalCapacity)
	if err != nil {
		return nil, err
	}
	state, err := core.NewState(cluster, cfg.Workload.Domains)
	if err != nil {
		return nil, err
	}
	if err := state.SetWeights(cfg.Workload.OracleWeights()); err != nil {
		return nil, err
	}

	engine := simcore.New(cfg.Seed)
	policyCfg := core.PolicyConfig{
		Name:        cfg.Policy,
		State:       state,
		Rand:        engine.Stream("policy"),
		Now:         engine.Now,
		ConstantTTL: cfg.ConstantTTL,
	}
	var geo *core.LatencyMatrix
	if cfg.GeoPreference > 0 {
		base, span := cfg.GeoBaseMS, cfg.GeoSpanMS
		if base == 0 && span == 0 {
			base, span = 20, 160
		}
		geo, err = core.RingLatencies(cfg.Workload.Domains, cfg.Servers, base, span)
		if err != nil {
			return nil, err
		}
		policyCfg.Proximity = &core.ProximityConfig{Matrix: geo, Preference: cfg.GeoPreference}
	}
	policy, err := core.NewPolicy(policyCfg)
	if err != nil {
		return nil, err
	}

	servers := make([]*webserver.Server, cfg.Servers)
	for i := range servers {
		servers[i], err = webserver.New(cluster.Capacity(i), cfg.Workload.Domains)
		if err != nil {
			return nil, err
		}
	}
	caches := make([]*nameserver.Cache, cfg.Workload.Domains)
	for j := range caches {
		caches[j], err = nameserver.New(cfg.MinNSTTL)
		if err != nil {
			return nil, err
		}
	}

	var estimator *core.Estimator
	if !cfg.OracleWeights {
		estimator, err = core.NewEstimator(cfg.Workload.Domains, cfg.EstimatorAlpha)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Config: cfg}
	var scheduleErr error
	var latSum, latHits float64

	// Failure model: liveness as the scheduler sees it, plus
	// time-to-drain bookkeeping per server.
	downNow := make([]bool, cfg.Servers)
	recoveredAt := make([]float64, cfg.Servers)
	drainPending := make([]bool, cfg.Servers)
	var drainSum float64
	var drainN int

	// Graceful-retirement model: draining servers keep serving their
	// hidden load but take no new mappings; lastExpiry tracks each
	// server's largest outstanding TTL — the drain window's end.
	drainingNow := make([]bool, cfg.Servers)
	removedNow := make([]bool, cfg.Servers)
	lastExpiry := make([]float64, cfg.Servers)

	deliver := func(domain, server, hits int) {
		if server < 0 {
			// The session could not be resolved: the page is lost.
			res.LostPages++
			return
		}
		if removedNow[server] {
			// A session outlived the drain window and is still pinned to
			// a retired server: its traffic is lost.
			res.PostRemovalHits += uint64(hits)
			res.LostPages++
			return
		}
		if downNow[server] {
			// A cached mapping pinned this domain to a dead server; the
			// page is lost until the TTL expires or the server returns.
			res.DeadServerHits += uint64(hits)
			res.LostPages++
			return
		}
		if drainingNow[server] {
			res.DrainedServerHits += uint64(hits)
		}
		if drainPending[server] {
			drainPending[server] = false
			drainSum += engine.Now() - recoveredAt[server]
			drainN++
		}
		servers[server].Arrive(engine.Now(), domain, hits)
		if geo != nil {
			latSum += geo.Latency(domain, server) * float64(hits)
			latHits += float64(hits)
		}
	}

	// resolve returns the server for a new session of the given domain,
	// consulting the domain's NS cache first; -1 when the whole cluster
	// is down.
	resolve := func(domain int) int {
		now := engine.Now()
		if server, ok := caches[domain].Lookup(now); ok {
			return server
		}
		d, err := policy.Schedule(domain)
		if err != nil {
			if errors.Is(err, core.ErrNoServers) {
				res.FailedResolves++
				return -1
			}
			if scheduleErr == nil {
				scheduleErr = err
			}
			return 0
		}
		res.AddressRequests++
		// The NS-applied TTL (after any non-cooperative clamp) bounds
		// how long this mapping can pin traffic to the chosen server.
		effective := caches[domain].Store(now, d.Server, d.TTL)
		if exp := now + effective; effective > 0 && exp > lastExpiry[d.Server] {
			lastExpiry[d.Server] = exp
		}
		if drainingNow[d.Server] || removedNow[d.Server] {
			res.PostDrainMappings++
		}
		return d.Server
	}

	// Traffic: either live client processes or a recorded trace.
	if len(cfg.Trace) > 0 {
		if err := scheduleTrace(cfg, engine, deliver, resolve); err != nil {
			return nil, err
		}
	} else {
		scheduleClients(cfg, engine, deliver, resolve)
	}

	// Utilization sampling, alarms, and the max-utilization metric.
	// Servers recompute utilization (and evaluate the alarm condition)
	// every UtilizationInterval; the reported metric averages the
	// sub-windows spanned by each MetricWindow.
	horizon := cfg.Warmup + cfg.Duration
	maxUtil := stats.NewWindowedMax(cfg.Servers)
	alarmed := make([]bool, cfg.Servers)
	subPerMetric := int(math.Round(cfg.MetricWindow / cfg.UtilizationInterval))
	utilSum := make([]float64, cfg.Servers)
	subCount := 0
	var sampler func()
	sampler = func() {
		now := engine.Now()
		measuring := now > cfg.Warmup
		for i, sv := range servers {
			u := sv.CloseWindow(now)
			if downNow[i] || removedNow[i] {
				// A dead or retired server serves nothing and signals
				// nothing; its residual backlog drain is not a utilization
				// observation (the metric window averages it as zero).
				continue
			}
			if cfg.AlarmThreshold > 0 {
				over := u > cfg.AlarmThreshold
				if over != alarmed[i] {
					alarmed[i] = over
					if err := state.SetAlarm(i, over); err != nil && scheduleErr == nil {
						scheduleErr = err
					}
					res.AlarmSignals++
				}
			}
			if measuring {
				utilSum[i] += u
			}
		}
		if measuring {
			subCount++
			if subCount == subPerMetric {
				for i := range utilSum {
					maxUtil.Observe(i, utilSum[i]/float64(subPerMetric))
					utilSum[i] = 0
				}
				subCount = 0
			}
		}
		if now < horizon {
			engine.Schedule(cfg.UtilizationInterval, sampler)
		}
	}
	engine.Schedule(cfg.UtilizationInterval, sampler)

	// Fault injection: crash/recovery events flip the scheduler's
	// liveness view at their virtual times. A crash also retracts the
	// server's alarm (a dead server signals nothing); what the DNS
	// cannot retract are the cached mappings still pointing at it.
	for _, ev := range cfg.Faults {
		ev := ev
		engine.ScheduleAt(ev.Time, func() {
			if downNow[ev.Server] == ev.Down {
				return
			}
			downNow[ev.Server] = ev.Down
			if err := state.SetDown(ev.Server, ev.Down); err != nil && scheduleErr == nil {
				scheduleErr = err
			}
			if ev.Down {
				if alarmed[ev.Server] {
					alarmed[ev.Server] = false
					if err := state.SetAlarm(ev.Server, false); err != nil && scheduleErr == nil {
						scheduleErr = err
					}
				}
				drainPending[ev.Server] = false
			} else {
				recoveredAt[ev.Server] = engine.Now()
				drainPending[ev.Server] = true
			}
		})
	}

	// Graceful drains: at its event time the server leaves the
	// scheduler's eligible set but stays a member — its pre-drain
	// cached mappings keep sending traffic until the largest
	// outstanding TTL expires (lastExpiry, frozen once the drain
	// starts because no new mappings reach a draining server). Only
	// then does the slot leave membership. Mirrors the live DRAIN path.
	for _, ev := range cfg.Drains {
		ev := ev
		engine.ScheduleAt(ev.Time, func() {
			if drainingNow[ev.Server] || removedNow[ev.Server] {
				return
			}
			if err := state.DrainServer(ev.Server); err != nil {
				if scheduleErr == nil {
					scheduleErr = fmt.Errorf("drain server %d: %w", ev.Server, err)
				}
				return
			}
			drainingNow[ev.Server] = true
			wait := lastExpiry[ev.Server] - engine.Now()
			if wait < 0 {
				wait = 0
			}
			engine.Schedule(wait, func() {
				if err := state.RemoveServer(ev.Server); err != nil {
					if scheduleErr == nil {
						scheduleErr = fmt.Errorf("remove server %d: %w", ev.Server, err)
					}
					return
				}
				drainingNow[ev.Server] = false
				removedNow[ev.Server] = true
			})
		})
	}

	// Dynamic hidden-load estimation, when enabled. The report-loss
	// fault model drops a server's whole interval report with
	// probability ReportLossProb; dead servers report nothing.
	if estimator != nil {
		lossStream := engine.Stream("reportloss")
		var collect func()
		collect = func() {
			for i, sv := range servers {
				hits := sv.TakeDomainHits()
				if downNow[i] || removedNow[i] {
					// Dead and retired servers report nothing (draining
					// ones still do — they are alive and serving).
					continue
				}
				if cfg.ReportLossProb > 0 && lossStream.Float64() < cfg.ReportLossProb {
					res.LostReports++
					continue
				}
				for j, h := range hits {
					estimator.Record(j, h)
				}
			}
			estimator.Roll(cfg.EstimatorInterval)
			if err := state.SetWeights(estimator.Weights()); err != nil && scheduleErr == nil {
				scheduleErr = err
			}
			if engine.Now() < horizon {
				engine.Schedule(cfg.EstimatorInterval, collect)
			}
		}
		engine.Schedule(cfg.EstimatorInterval, collect)
	}

	engine.Run(horizon)
	if scheduleErr != nil {
		return nil, fmt.Errorf("sim: scheduling failed: %w", scheduleErr)
	}

	res.MaxUtil = maxUtil.Series()
	res.MeanServerUtil = make([]float64, cfg.Servers)
	var weightedResponse float64
	for i, sv := range servers {
		res.MeanServerUtil[i] = sv.MeanUtilization(engine.Now())
		res.TotalHits += sv.TotalHits()
		res.TotalPages += sv.TotalPages()
		weightedResponse += sv.MeanResponseTime() * float64(sv.TotalPages())
		if sv.MaxResponseTime() > res.MaxResponseTime {
			res.MaxResponseTime = sv.MaxResponseTime()
		}
	}
	if res.TotalPages > 0 {
		res.MeanResponseTime = weightedResponse / float64(res.TotalPages)
	}
	if latHits > 0 {
		res.MeanLatencyMS = latSum / latHits
	}
	if drainN > 0 {
		res.MeanTimeToDrain = drainSum / float64(drainN)
	}
	for _, c := range caches {
		st := c.Stats()
		res.CacheHits += st.Hits
		res.ClampedTTLs += st.Clamped
	}
	res.Sched = policy.Stats()
	res.EventsFired = engine.EventsFired()
	return res, nil
}

// scheduleClients installs the live client processes: each client
// cycles think → page burst, resolving the site name at each session
// start.
func scheduleClients(cfg Config, engine *simcore.Simulator, deliver func(domain, server, hits int), resolve func(int) int) {
	thinkStream := engine.Stream("think")
	hitsStream := engine.Stream("hits")
	pagesStream := engine.Stream("pages")
	thinks := cfg.Workload.ThinkTimes()
	counts := cfg.Workload.Partition()
	for domain := 0; domain < cfg.Workload.Domains; domain++ {
		if math.IsInf(thinks[domain], 1) {
			continue // perturbation starved this domain entirely
		}
		for c := 0; c < counts[domain]; c++ {
			cl := &client{domain: domain}
			var wake func()
			wake = func() {
				if cl.pagesLeft == 0 {
					cl.server = resolve(cl.domain)
					cl.pagesLeft = pagesStream.Geometric(cfg.Workload.PagesPerSession)
				}
				hits := hitsStream.UniformInt(cfg.Workload.HitsMin, cfg.Workload.HitsMax)
				deliver(cl.domain, cl.server, hits)
				cl.pagesLeft--
				engine.Schedule(thinkStream.Exp(thinks[cl.domain]), wake)
			}
			engine.Schedule(thinkStream.Exp(thinks[domain]), wake)
		}
	}
}

// scheduleTrace installs trace playback: every record becomes one
// arrival event; new-session records re-resolve the client's mapping.
func scheduleTrace(cfg Config, engine *simcore.Simulator, deliver func(domain, server, hits int), resolve func(int) int) error {
	clientServer := make(map[int]int)
	for i := range cfg.Trace {
		rec := cfg.Trace[i]
		if rec.Domain >= cfg.Workload.Domains {
			return fmt.Errorf("sim: trace record %d references domain %d, workload has %d",
				i, rec.Domain, cfg.Workload.Domains)
		}
		engine.ScheduleAt(rec.Time, func() {
			if rec.NewSession {
				clientServer[rec.Client] = resolve(rec.Domain)
			}
			server, ok := clientServer[rec.Client]
			if !ok {
				// Tolerate traces that start mid-session.
				server = resolve(rec.Domain)
				clientServer[rec.Client] = server
			}
			deliver(rec.Domain, server, rec.Hits)
		})
	}
	return nil
}

// RunReplications executes the same configuration with seeds
// seed, seed+1, … and returns all results.
func RunReplications(cfg Config, reps int) ([]*Result, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("sim: reps %d must be positive", reps)
	}
	out := make([]*Result, 0, reps)
	for r := 0; r < reps; r++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(r)
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// RunReplicationsParallel is RunReplications fanned across up to
// `workers` goroutines (capped at reps; 0 or negative means
// runtime.NumCPU). Every replication is an independent simulation with
// its own engine, state and policy, so runs never share mutable state;
// results come back in seed order and are identical to the sequential
// runner's — parallelism changes wall-clock only, never output.
func RunReplicationsParallel(cfg Config, reps, workers int) ([]*Result, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("sim: reps %d must be positive", reps)
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > reps {
		workers = reps
	}
	if workers == 1 {
		return RunReplications(cfg, reps)
	}
	out := make([]*Result, reps)
	errs := make([]error, reps)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for r := range next {
				c := cfg
				c.Seed = cfg.Seed + uint64(r)
				out[r], errs[r] = Run(c)
			}
		}()
	}
	for r := 0; r < reps; r++ {
		next <- r
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ProbMaxUnderCI aggregates Prob(MaxUtilization < x) across
// replications into a confidence interval.
func ProbMaxUnderCI(results []*Result, x, level float64) stats.Interval {
	obs := make([]float64, len(results))
	for i, r := range results {
		obs[i] = r.ProbMaxUnder(x)
	}
	return stats.MeanCI(obs, level)
}
