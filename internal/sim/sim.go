package sim

import (
	"fmt"
	"runtime"
	"sync"

	"dnslb/internal/core"
	"dnslb/internal/engine"
	"dnslb/internal/simcore"
	"dnslb/internal/stats"
	"dnslb/internal/webserver"
)

// Result holds the outputs of one simulation run.
type Result struct {
	// Config echoes the run's configuration.
	Config Config
	// MaxUtil is the per-window maximum server utilization series
	// after warm-up — the paper's primary metric source.
	MaxUtil *stats.Series
	// MeanServerUtil is each server's mean utilization over the
	// measured period.
	MeanServerUtil []float64
	// AddressRequests counts DNS scheduler decisions (NS cache misses).
	AddressRequests uint64
	// CacheHits counts NS lookups answered from cache.
	CacheHits uint64
	// TotalHits and TotalPages count the data requests served.
	TotalHits  uint64
	TotalPages uint64
	// AlarmSignals counts alarm state transitions sent to the DNS.
	AlarmSignals uint64
	// MeanResponseTime is the traffic-weighted mean page response time
	// (queue wait + service) across servers, in seconds — a secondary
	// metric: overload shows up as unbounded queueing delay.
	MeanResponseTime float64
	// MaxResponseTime is the worst page response time at any server.
	MaxResponseTime float64
	// MeanLatencyMS is the traffic-weighted mean client-to-server
	// network distance under the geo extension (0 unless GeoPreference
	// or the geo matrix is enabled).
	MeanLatencyMS float64
	// Sched is the scheduling policy's own counters.
	Sched core.Stats
	// ClampedTTLs counts mappings whose TTL a non-cooperative NS raised.
	ClampedTTLs uint64
	// EventsFired is the engine's executed event count.
	EventsFired uint64

	// DeadServerHits counts hits addressed to a server while it was
	// down: the TTL-pinned traffic cached mappings keep sending to a
	// dead server until they expire. Every such page is also lost.
	DeadServerHits uint64
	// LostPages counts page bursts that could not be served: their
	// target server was down, or no server was available at resolve
	// time.
	LostPages uint64
	// FailedResolves counts address requests the scheduler answered
	// with "no server available" (the whole cluster was down).
	FailedResolves uint64
	// MeanTimeToDrain is the mean delay, over recovery events, from a
	// server coming back until client traffic reaches it again — how
	// long stale cached mappings and pointer state keep a recovered
	// server idle. 0 when no recovery was observed (or traffic never
	// returned).
	MeanTimeToDrain float64
	// LostReports counts hidden-load reports dropped by the
	// report-loss fault model.
	LostReports uint64
	// MeanDetectionDelay is the mean virtual-time lag from a crash to
	// the scheduler excluding the server, over detected crashes, under
	// the Detection model (0 under instant knowledge).
	MeanDetectionDelay float64
	// MeanReviveDelay is the mean lag from a recovery to the scheduler
	// re-admitting the server (0 under instant knowledge).
	MeanReviveDelay float64
	// DetectedCrashes counts crash events the detector caught before
	// they were superseded.
	DetectedCrashes uint64

	// ReplDecisions counts scheduler decisions made by each replica
	// (replication extension; nil for a single-replica run).
	ReplDecisions []uint64
	// ReplDeltasApplied counts inter-replica deltas merged after
	// fencing; ReplDeltasDropped counts deltas dropped whole
	// (duplicates, stale epochs, echoes).
	ReplDeltasApplied uint64
	ReplDeltasDropped uint64
	// ReplFullSyncs counts anti-entropy snapshot deltas shipped (the
	// initial contact and every post-partition heal).
	ReplFullSyncs uint64
	// ReplMaxWeightDiff is the largest absolute per-domain weight
	// disagreement between any two replicas' estimators at the horizon —
	// the staleness cost replication pays for availability.
	ReplMaxWeightDiff float64
	// ReplLedgerDivergenceSec is the largest absolute disagreement, in
	// seconds, between any two replicas' hidden-load window expiries at
	// the horizon.
	ReplLedgerDivergenceSec float64

	// EstimatorAlarmTime is the first virtual time the estimator's
	// demand view (the NS-cache forecast for the predictive kind, the
	// rolled EWMA for the reactive one) exceeded AlarmThreshold ×
	// TotalCapacity — the estimator-driven overload alarm. 0 when it
	// never fired, the estimator is disabled, or alarms are off. The
	// reactive-vs-predictive difference on a flash crowd is the
	// forecast's alarm lead time (ext-forecast experiment).
	EstimatorAlarmTime float64
	// EstimatorRejected counts per-domain hit observations the
	// estimator refused (out-of-range domain or negative count).
	EstimatorRejected uint64
	// ForecastAbsError is the predictive estimator's smoothed mean
	// absolute forecast error in hits/s at the horizon (0 for other
	// kinds).
	ForecastAbsError float64

	// ECSQueries counts scheduler decisions made through the resolver
	// population model of the misalignment extension (0 unless
	// Config.ECSMisalign is set).
	ECSQueries uint64
	// ECSCarried counts those queries that forwarded the clients' true
	// subnet in an ECS option.
	ECSCarried uint64
	// ECSMisrouted counts decisions the engine classified to a
	// different domain than the clients' true one — misaligned
	// resolvers without ECS. With ECS enabled it must drop to zero.
	ECSMisrouted uint64

	// DrainedServerHits counts hits served by a draining server — the
	// hidden load its pre-drain cached mappings kept directing at it
	// while the drain window was open.
	DrainedServerHits uint64
	// PostDrainMappings counts scheduler decisions that chose a
	// draining or removed server; it must be zero when the policy
	// honours membership.
	PostDrainMappings uint64
	// PostRemovalHits counts hits addressed to a server after it left
	// membership — sessions outliving the drain window. Those pages
	// are lost (the machine is gone).
	PostRemovalHits uint64
}

// ProbMaxUnder returns the fraction of measurement windows in which
// every server's utilization stayed below the level x — the paper's
// cumulative frequency of the maximum utilization.
func (r *Result) ProbMaxUnder(x float64) float64 { return r.MaxUtil.CDF(x) }

// ProbMaxUnderBatchCI estimates a within-run confidence interval for
// Prob(MaxUtilization < x) by the method of batch means over the
// window indicator series — the single-run analogue of the paper's
// "95% confidence interval within 4% of the mean" statement.
func (r *Result) ProbMaxUnderBatchCI(x, level float64) stats.Interval {
	vals := r.MaxUtil.Values()
	indicators := make([]float64, len(vals))
	for i, v := range vals {
		if v <= x {
			indicators[i] = 1
		}
	}
	return stats.BatchMeansCI(indicators, 10, level)
}

// AddressRate returns scheduler decisions per virtual second.
func (r *Result) AddressRate() float64 {
	return float64(r.AddressRequests) / (r.Config.Duration + r.Config.Warmup)
}

// ControlledFraction returns the fraction of page requests whose
// routing the DNS directly decided — the paper's observation that the
// scheduler controls only a small percentage of the requests.
func (r *Result) ControlledFraction() float64 {
	if r.TotalPages == 0 {
		return 0
	}
	return float64(r.AddressRequests) / float64(r.TotalPages)
}

// failSlot records the first error raised inside a scheduled event;
// the run reports it after the virtual horizon.
type failSlot struct{ err error }

func (f *failSlot) fail(err error) {
	if f.err == nil {
		f.err = err
	}
}

// Run executes one simulation and returns its results.
//
// Run is an assembly of components around one scheduling engine
// (internal/engine) — the same decision lifecycle the live DNS server
// runs, here under virtual time:
//
//   - the traffic source (live client processes or trace playback),
//   - the NS cache tier resolving sessions through the engine,
//   - the traffic sink routing page bursts to the Web servers,
//   - the fault and drain injectors,
//   - the utilization and estimator collectors.
//
// Component installation order is part of the deterministic contract:
// the event heap breaks time ties by insertion order, so traffic is
// installed first, then the flash-crowd injector, the utilization
// sampler, the fault injector, the drain injector, the estimator
// collector, and the estimator probe (the last two only when the
// hidden-load estimator is enabled).
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Replicas > 1 {
		// The replicated assembly lives in replica.go; the single-replica
		// path below stays byte-identical to its pre-replication goldens.
		return runReplicated(cfg)
	}
	cluster, err := core.ScaledCluster(cfg.Servers, cfg.HeterogeneityPct, cfg.TotalCapacity)
	if err != nil {
		return nil, err
	}
	state, err := core.NewState(cluster, cfg.Workload.Domains)
	if err != nil {
		return nil, err
	}
	if err := state.SetWeights(cfg.Workload.OracleWeights()); err != nil {
		return nil, err
	}

	sc := simcore.New(cfg.Seed)
	policyCfg := core.PolicyConfig{
		Name:        cfg.Policy,
		State:       state,
		Rand:        sc.Stream("policy"),
		Now:         sc.Now,
		ConstantTTL: cfg.ConstantTTL,
	}
	prox, err := core.RingProximityConfig(cfg.Workload.Domains, cfg.Servers, cfg.GeoPreference, cfg.GeoBaseMS, cfg.GeoSpanMS)
	if err != nil {
		return nil, err
	}
	var geo *core.LatencyMatrix
	if prox != nil {
		geo = prox.Matrix
		policyCfg.Proximity = prox
	}
	policy, err := core.NewPolicy(policyCfg)
	if err != nil {
		return nil, err
	}

	servers := make([]*webserver.Server, cfg.Servers)
	for i := range servers {
		servers[i], err = webserver.New(cluster.Capacity(i), cfg.Workload.Domains)
		if err != nil {
			return nil, err
		}
	}

	// The interface variable is assigned only when feedback is enabled:
	// a typed-nil concrete pointer in the interface would make the
	// engine believe an estimator exists.
	var estimator core.LoadEstimator
	if !cfg.OracleWeights {
		estimator, err = core.NewLoadEstimator(cfg.Estimator, cfg.Workload.Domains, cfg.EstimatorAlpha)
		if err != nil {
			return nil, err
		}
	}

	engCfg := engine.Config{
		Policy:     policy,
		Clock:      engine.ClockFunc(sc.Now),
		Estimator:  estimator,
		OnDecision: cfg.DecisionTap,
	}
	var ecs *ecsResolvers
	if cfg.ECSMisalign != nil {
		// The misalignment extension routes decisions through the
		// engine's DecideQuery seam, which needs the address→domain
		// mapper; the default path never calls it, keeping its decision
		// stream (and the determinism goldens) untouched.
		engCfg.Mapper = ecsDomainMapper(cfg.Workload.Domains)
		ecs = newECSResolvers(cfg.ECSMisalign, cfg.Workload.Domains)
	}
	eng, err := engine.New(engCfg)
	if err != nil {
		return nil, err
	}

	res := &Result{Config: cfg}
	var sched failSlot

	recov := newDrainTracker(cfg.Servers)
	sink := &trafficSink{sim: sc, state: state, servers: servers, geo: geo, recov: recov, res: res}
	tier, err := newCacheTier(cfg, sc, eng, res, sched.fail)
	if err != nil {
		return nil, err
	}
	tier.ecs = ecs

	if len(cfg.Trace) > 0 {
		if err := scheduleTrace(cfg, sc, sink.deliver, tier.resolve); err != nil {
			return nil, err
		}
	} else {
		scheduleClients(cfg, sc, sink.deliver, tier.resolve)
	}
	flash := &flashInjector{cfg: cfg, sim: sc, tier: tier, deliver: sink.deliver, fail: sched.fail}
	flash.install()
	horizon := cfg.Warmup + cfg.Duration
	util := newUtilizationCollector(cfg, sc, eng, servers, res, sched.fail, horizon)
	util.install()
	faults := &faultInjector{sim: sc, eng: eng, recov: recov, fail: sched.fail}
	if cfg.Detection != nil {
		actual := &groundTruth{down: make([]bool, cfg.Servers)}
		sink.actual = actual
		faults.detect = cfg.Detection
		faults.actual = actual
		faults.stream = sc.Stream("detect")
		faults.gen = make([]uint64, cfg.Servers)
	}
	faults.install(cfg.Faults)
	(&drainInjector{sim: sc, eng: eng, fail: sched.fail}).install(cfg.Drains)
	if eng.HasEstimator() {
		(&estimatorCollector{cfg: cfg, sim: sc, eng: eng, servers: servers, res: res, fail: sched.fail, horizon: horizon}).install()
		(&estimatorProbe{cfg: cfg, sim: sc, eng: eng, res: res, horizon: horizon}).install()
	}

	sc.Run(horizon)
	if sched.err != nil {
		return nil, fmt.Errorf("sim: scheduling failed: %w", sched.err)
	}

	res.MaxUtil = util.maxUtil.Series()
	res.MeanServerUtil = make([]float64, cfg.Servers)
	var weightedResponse float64
	for i, sv := range servers {
		res.MeanServerUtil[i] = sv.MeanUtilization(sc.Now())
		res.TotalHits += sv.TotalHits()
		res.TotalPages += sv.TotalPages()
		weightedResponse += sv.MeanResponseTime() * float64(sv.TotalPages())
		if sv.MaxResponseTime() > res.MaxResponseTime {
			res.MaxResponseTime = sv.MaxResponseTime()
		}
	}
	if res.TotalPages > 0 {
		res.MeanResponseTime = weightedResponse / float64(res.TotalPages)
	}
	res.MeanLatencyMS = sink.meanLatencyMS()
	res.MeanTimeToDrain = recov.mean()
	if faults.downDetects > 0 {
		res.MeanDetectionDelay = faults.downDelaySum / float64(faults.downDetects)
	}
	if faults.upDetects > 0 {
		res.MeanReviveDelay = faults.upDelaySum / float64(faults.upDetects)
	}
	res.DetectedCrashes = faults.downDetects
	tier.collect(res)
	flash.collect(res)
	if ecs != nil {
		ecs.collect(res)
	}
	res.EstimatorRejected = eng.EstimatorRejected()
	if abs, ok := eng.ForecastError(); ok {
		res.ForecastAbsError = abs
	}
	res.Sched = policy.Stats()
	res.EventsFired = sc.EventsFired()
	return res, nil
}

// RunReplications executes the same configuration with seeds
// seed, seed+1, … and returns all results.
func RunReplications(cfg Config, reps int) ([]*Result, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("sim: reps %d must be positive", reps)
	}
	out := make([]*Result, 0, reps)
	for r := 0; r < reps; r++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(r)
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// RunReplicationsParallel is RunReplications fanned across up to
// `workers` goroutines (capped at reps; 0 or negative means
// runtime.NumCPU). Every replication is an independent simulation with
// its own engine, state and policy, so runs never share mutable state;
// results come back in seed order and are identical to the sequential
// runner's — parallelism changes wall-clock only, never output.
func RunReplicationsParallel(cfg Config, reps, workers int) ([]*Result, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("sim: reps %d must be positive", reps)
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > reps {
		workers = reps
	}
	if workers == 1 {
		return RunReplications(cfg, reps)
	}
	out := make([]*Result, reps)
	errs := make([]error, reps)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for r := range next {
				c := cfg
				c.Seed = cfg.Seed + uint64(r)
				out[r], errs[r] = Run(c)
			}
		}()
	}
	for r := 0; r < reps; r++ {
		next <- r
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ProbMaxUnderCI aggregates Prob(MaxUtilization < x) across
// replications into a confidence interval.
func ProbMaxUnderCI(results []*Result, x, level float64) stats.Interval {
	obs := make([]float64, len(results))
	for i, r := range results {
		obs[i] = r.ProbMaxUnder(x)
	}
	return stats.MeanCI(obs, level)
}
