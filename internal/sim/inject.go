package sim

import (
	"fmt"

	"dnslb/internal/engine"
	"dnslb/internal/simcore"
)

// faultInjector schedules crash/recovery events that flip the
// scheduler's liveness view at their virtual times. A crash also
// retracts the server's alarm (a dead server signals nothing; the
// retraction is not an alarm signal, so it does not count); what the
// DNS cannot retract are the cached mappings still pointing at it.
//
// With a Detection model attached the injector splits each event in
// two: the server's ground truth (what clients experience, held in
// actual) flips at the event time, while the scheduler's Down flag
// follows after the detector's delay. A generation counter per server
// cancels a scheduled flip when a newer fault event supersedes it
// (e.g. the server recovers before the crash was ever detected).
type faultInjector struct {
	sim   *simcore.Simulator
	eng   *engine.Engine
	recov *drainTracker
	fail  func(error)

	// Detection-model state; all nil/unused under instant knowledge.
	detect *DetectionConfig
	actual *groundTruth
	stream *simcore.Stream
	gen    []uint64

	downDelaySum float64
	downDetects  uint64
	upDelaySum   float64
	upDetects    uint64
}

func (f *faultInjector) install(events []FaultEvent) {
	if f.detect != nil {
		f.installDetected(events)
		return
	}
	st := f.eng.State()
	for _, ev := range events {
		ev := ev
		f.sim.ScheduleAt(ev.Time, func() {
			if st.Down(ev.Server) == ev.Down {
				return
			}
			if err := f.eng.SetDown(ev.Server, ev.Down); err != nil {
				f.fail(err)
			}
			if ev.Down {
				if st.Alarmed(ev.Server) {
					if err := f.eng.SetAlarm(ev.Server, false); err != nil {
						f.fail(err)
					}
				}
				f.recov.crashed(ev.Server)
			} else {
				f.recov.recovered(ev.Server, f.sim.Now())
			}
		})
	}
}

// installDetected is the detection-model variant: ground truth flips at
// the event time, the scheduler follows after the detector delay.
func (f *faultInjector) installDetected(events []FaultEvent) {
	st := f.eng.State()
	for _, ev := range events {
		ev := ev
		f.sim.ScheduleAt(ev.Time, func() {
			if f.actual.down[ev.Server] == ev.Down {
				return
			}
			f.actual.down[ev.Server] = ev.Down
			f.gen[ev.Server]++
			gen := f.gen[ev.Server]
			// Time-to-drain tracks ground truth: traffic can return to a
			// recovered server through cached mappings before the
			// scheduler re-admits it.
			if ev.Down {
				f.recov.crashed(ev.Server)
			} else {
				f.recov.recovered(ev.Server, f.sim.Now())
			}
			var delay float64
			phase := f.stream.Float64()
			if ev.Down {
				delay = f.detect.downDelay(phase)
			} else {
				delay = f.detect.upDelay(phase)
			}
			f.sim.Schedule(delay, func() {
				if f.gen[ev.Server] != gen {
					return // superseded by a newer fault event
				}
				if st.Down(ev.Server) == ev.Down {
					return
				}
				if err := f.eng.SetDown(ev.Server, ev.Down); err != nil {
					f.fail(err)
					return
				}
				if ev.Down {
					if st.Alarmed(ev.Server) {
						if err := f.eng.SetAlarm(ev.Server, false); err != nil {
							f.fail(err)
						}
					}
					f.downDelaySum += delay
					f.downDetects++
				} else {
					f.upDelaySum += delay
					f.upDetects++
				}
			})
		})
	}
}

// groundTruth is the servers' actual liveness under the detection
// model, as opposed to the scheduler's (possibly stale) view.
type groundTruth struct {
	down []bool
}

// drainInjector schedules graceful server retirements: at its event
// time the server leaves the scheduler's eligible set but stays a
// member — its pre-drain cached mappings keep sending traffic until
// the largest outstanding TTL in the engine's mapping ledger expires
// (frozen once the drain starts because no new mappings reach a
// draining server). Only then does the slot leave membership. Mirrors
// the live DRAIN path (internal/dnsserver).
type drainInjector struct {
	sim  *simcore.Simulator
	eng  *engine.Engine
	fail func(error)
}

func (dr *drainInjector) install(events []DrainEvent) {
	st := dr.eng.State()
	for _, ev := range events {
		ev := ev
		dr.sim.ScheduleAt(ev.Time, func() {
			if st.Draining(ev.Server) || !st.Member(ev.Server) {
				return
			}
			if err := st.DrainServer(ev.Server); err != nil {
				dr.fail(fmt.Errorf("drain server %d: %w", ev.Server, err))
				return
			}
			wait := dr.eng.MappingExpiry(ev.Server) - dr.sim.Now()
			if wait < 0 {
				wait = 0
			}
			dr.sim.Schedule(wait, func() {
				if err := st.RemoveServer(ev.Server); err != nil {
					dr.fail(fmt.Errorf("remove server %d: %w", ev.Server, err))
				}
			})
		})
	}
}
