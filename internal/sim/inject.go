package sim

import (
	"fmt"

	"dnslb/internal/engine"
	"dnslb/internal/simcore"
)

// faultInjector schedules crash/recovery events that flip the
// scheduler's liveness view at their virtual times. A crash also
// retracts the server's alarm (a dead server signals nothing; the
// retraction is not an alarm signal, so it does not count); what the
// DNS cannot retract are the cached mappings still pointing at it.
type faultInjector struct {
	sim   *simcore.Simulator
	eng   *engine.Engine
	recov *drainTracker
	fail  func(error)
}

func (f *faultInjector) install(events []FaultEvent) {
	st := f.eng.State()
	for _, ev := range events {
		ev := ev
		f.sim.ScheduleAt(ev.Time, func() {
			if st.Down(ev.Server) == ev.Down {
				return
			}
			if err := f.eng.SetDown(ev.Server, ev.Down); err != nil {
				f.fail(err)
			}
			if ev.Down {
				if st.Alarmed(ev.Server) {
					if err := f.eng.SetAlarm(ev.Server, false); err != nil {
						f.fail(err)
					}
				}
				f.recov.crashed(ev.Server)
			} else {
				f.recov.recovered(ev.Server, f.sim.Now())
			}
		})
	}
}

// drainInjector schedules graceful server retirements: at its event
// time the server leaves the scheduler's eligible set but stays a
// member — its pre-drain cached mappings keep sending traffic until
// the largest outstanding TTL in the engine's mapping ledger expires
// (frozen once the drain starts because no new mappings reach a
// draining server). Only then does the slot leave membership. Mirrors
// the live DRAIN path (internal/dnsserver).
type drainInjector struct {
	sim  *simcore.Simulator
	eng  *engine.Engine
	fail func(error)
}

func (dr *drainInjector) install(events []DrainEvent) {
	st := dr.eng.State()
	for _, ev := range events {
		ev := ev
		dr.sim.ScheduleAt(ev.Time, func() {
			if st.Draining(ev.Server) || !st.Member(ev.Server) {
				return
			}
			if err := st.DrainServer(ev.Server); err != nil {
				dr.fail(fmt.Errorf("drain server %d: %w", ev.Server, err))
				return
			}
			wait := dr.eng.MappingExpiry(ev.Server) - dr.sim.Now()
			if wait < 0 {
				wait = 0
			}
			dr.sim.Schedule(wait, func() {
				if err := st.RemoveServer(ev.Server); err != nil {
					dr.fail(fmt.Errorf("remove server %d: %w", ev.Server, err))
				}
			})
		})
	}
}
