package sim

import (
	"testing"

	"dnslb/internal/trace"
)

// TestTraceReplayMatchesLiveRun is the strongest possible check of the
// trace substrate: a trace generated with the same seed and workload
// must replay into *exactly* the same simulation results as the live
// client processes — same address requests, same hits, same metric.
func TestTraceReplayMatchesLiveRun(t *testing.T) {
	cfg := quickCfg("DRR2-TTL/S_K")
	cfg.Duration = 1800

	live, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	records, err := trace.Generate(cfg.Workload, cfg.Warmup+cfg.Duration, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	replayCfg := cfg
	replayCfg.Trace = records
	replay, err := Run(replayCfg)
	if err != nil {
		t.Fatal(err)
	}

	if live.TotalHits != replay.TotalHits {
		t.Errorf("TotalHits: live %d, replay %d", live.TotalHits, replay.TotalHits)
	}
	if live.TotalPages != replay.TotalPages {
		t.Errorf("TotalPages: live %d, replay %d", live.TotalPages, replay.TotalPages)
	}
	if live.AddressRequests != replay.AddressRequests {
		t.Errorf("AddressRequests: live %d, replay %d", live.AddressRequests, replay.AddressRequests)
	}
	if live.CacheHits != replay.CacheHits {
		t.Errorf("CacheHits: live %d, replay %d", live.CacheHits, replay.CacheHits)
	}
	if got, want := replay.ProbMaxUnder(0.9), live.ProbMaxUnder(0.9); got != want {
		t.Errorf("ProbMaxUnder(0.9): live %v, replay %v", want, got)
	}
	if got, want := replay.ProbMaxUnder(0.98), live.ProbMaxUnder(0.98); got != want {
		t.Errorf("ProbMaxUnder(0.98): live %v, replay %v", want, got)
	}
}

// TestTraceEnablesPairedPolicyComparison replays one trace against two
// policies: identical arrivals, so the difference is purely the
// scheduling discipline.
func TestTraceEnablesPairedPolicyComparison(t *testing.T) {
	base := quickCfg("RR")
	base.Duration = 1800
	records, err := trace.Generate(base.Workload, base.Warmup+base.Duration, base.Seed)
	if err != nil {
		t.Fatal(err)
	}

	run := func(policy string) *Result {
		cfg := base
		cfg.Policy = policy
		cfg.Trace = records
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	rr := run("RR")
	best := run("DRR2-TTL/S_K")
	if rr.TotalHits != best.TotalHits {
		t.Fatalf("paired runs saw different traffic: %d vs %d", rr.TotalHits, best.TotalHits)
	}
	if best.ProbMaxUnder(0.9) <= rr.ProbMaxUnder(0.9) {
		t.Errorf("on identical arrivals, DRR2-TTL/S_K (%v) must beat RR (%v)",
			best.ProbMaxUnder(0.9), rr.ProbMaxUnder(0.9))
	}
}

func TestTraceDomainOutOfRange(t *testing.T) {
	cfg := quickCfg("RR")
	cfg.Trace = []trace.Record{{Time: 1, Domain: 99, Client: 0, Hits: 5, NewSession: true}}
	if _, err := Run(cfg); err == nil {
		t.Error("trace referencing unknown domain should error")
	}
}

func TestTraceStartingMidSession(t *testing.T) {
	cfg := quickCfg("RR")
	cfg.Duration = 900
	// No NewSession on the first record: the replay must resolve lazily.
	cfg.Trace = []trace.Record{
		{Time: 1, Domain: 0, Client: 0, Hits: 5},
		{Time: 2, Domain: 0, Client: 0, Hits: 7},
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalHits != 12 {
		t.Errorf("TotalHits = %d, want 12", r.TotalHits)
	}
	if r.AddressRequests != 1 {
		t.Errorf("AddressRequests = %d, want 1 (lazy resolve once)", r.AddressRequests)
	}
}
