package sim

import (
	"testing"

	"dnslb/internal/core"
)

func flashCfg(estimator string) Config {
	cfg := quickCfg("DRR2-TTL/S_K")
	cfg.OracleWeights = false
	cfg.Estimator = estimator
	cfg.FlashCrowds = []FlashEvent{{Time: 1800, Domain: 0, Clients: 300, Resolvers: 40, Duration: 900}}
	return cfg
}

func TestFlashConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"unknown estimator kind", func(c *Config) { c.Estimator = "oracle" }},
		{"negative flash time", func(c *Config) { c.FlashCrowds[0].Time = -1 }},
		{"flash domain out of range", func(c *Config) { c.FlashCrowds[0].Domain = c.Workload.Domains }},
		{"flash needs clients", func(c *Config) { c.FlashCrowds[0].Clients = 0 }},
		{"flash needs resolvers", func(c *Config) { c.FlashCrowds[0].Resolvers = 0 }},
		{"flash needs duration", func(c *Config) { c.FlashCrowds[0].Duration = 0 }},
		{"flash with replicas", func(c *Config) {
			c.Replicas = 2
			c.ReplicationInterval = 10
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := flashCfg(core.EstimatorReactive)
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestFlashCrowdInjectsTraffic(t *testing.T) {
	base := quickCfg("DRR2-TTL/S_K")
	base.OracleWeights = false
	base.Estimator = core.EstimatorReactive
	quiet, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	flashed, err := Run(flashCfg(core.EstimatorReactive))
	if err != nil {
		t.Fatal(err)
	}
	if flashed.TotalHits <= quiet.TotalHits {
		t.Errorf("flash crowd added no hits: %d vs %d", flashed.TotalHits, quiet.TotalHits)
	}
	// Fresh resolver caches must reach the DNS: a flash crowd is
	// visible in the decision stream, not only in the hit stream.
	if flashed.AddressRequests <= quiet.AddressRequests {
		t.Errorf("flash crowd added no address requests: %d vs %d",
			flashed.AddressRequests, quiet.AddressRequests)
	}

	// Same seed, same flash schedule → identical history.
	again, err := Run(flashCfg(core.EstimatorReactive))
	if err != nil {
		t.Fatal(err)
	}
	if again.TotalHits != flashed.TotalHits || again.AddressRequests != flashed.AddressRequests ||
		again.EventsFired != flashed.EventsFired {
		t.Error("flash-crowd run is not deterministic under a fixed seed")
	}
}

// TestPredictiveAlarmLeadsReactive is the extension's core claim at
// sim scale: on a flash crowd arriving through fresh resolver caches,
// the predictive estimator's demand alarm fires at least one
// collection interval before the reactive estimator's, because the
// forecast moves on the decision burst while the reactive EWMA waits
// for the next report roll.
func TestPredictiveAlarmLeadsReactive(t *testing.T) {
	reactive, err := Run(flashCfg(core.EstimatorReactive))
	if err != nil {
		t.Fatal(err)
	}
	predictive, err := Run(flashCfg(core.EstimatorPredictive))
	if err != nil {
		t.Fatal(err)
	}
	if reactive.EstimatorAlarmTime == 0 {
		t.Fatal("flash crowd never pushed reactive demand over the alarm threshold; scenario too weak")
	}
	if predictive.EstimatorAlarmTime == 0 {
		t.Fatal("predictive estimator never alarmed on the flash crowd")
	}
	cfg := flashCfg("")
	lead := reactive.EstimatorAlarmTime - predictive.EstimatorAlarmTime
	if lead < cfg.EstimatorInterval {
		t.Errorf("predictive alarm at %vs, reactive at %vs: lead %vs below one collection interval (%vs)",
			predictive.EstimatorAlarmTime, reactive.EstimatorAlarmTime, lead, cfg.EstimatorInterval)
	}
	// Both alarms react to the flash, not to steady-state noise.
	onset := cfg.FlashCrowds[0].Time
	if predictive.EstimatorAlarmTime < onset {
		t.Errorf("predictive alarm at %vs precedes the flash onset at %vs", predictive.EstimatorAlarmTime, onset)
	}
	// The forecast must stay honest: its tracked absolute error is
	// bounded by the cluster's total capacity (a wildly diverging
	// forecast would alarm early for the wrong reason).
	if predictive.ForecastAbsError <= 0 || predictive.ForecastAbsError > cfg.TotalCapacity {
		t.Errorf("forecast abs error = %v hits/s, want within (0, %v]",
			predictive.ForecastAbsError, cfg.TotalCapacity)
	}
}
