package sim

import (
	"testing"
)

// drainCfg is a short run that gracefully retires server 0 at the
// given virtual time.
func drainCfg(policy string, at float64) Config {
	cfg := DefaultConfig(policy)
	cfg.Duration = 1800
	cfg.Warmup = 100
	cfg.Drains = []DrainEvent{{Time: at, Server: 0}}
	return cfg
}

func TestDrainValidation(t *testing.T) {
	cfg := DefaultConfig("RR")
	cfg.Drains = []DrainEvent{{Time: -1, Server: 0}}
	if err := cfg.Validate(); err == nil {
		t.Error("negative drain time should error")
	}
	cfg.Drains = []DrainEvent{{Time: 10, Server: 7}}
	if err := cfg.Validate(); err == nil {
		t.Error("out-of-range drain server should error")
	}
}

func TestDrainStopsNewMappingsKeepsHiddenLoad(t *testing.T) {
	// Retire server 0 mid-run: from that moment the scheduler must
	// never choose it again, yet the mappings cached before the drain
	// keep sending it traffic until their TTLs lapse — the hidden-load
	// window the drain waits out. A graceful drain is not a crash:
	// nothing counts as dead-server loss. TTL 900 guarantees every
	// pre-drain mapping is still alive at t=600, so the window is open
	// whenever server 0 was ever chosen (a TTL shorter than the time
	// since its last mapping would close the window instantly — the
	// correct degenerate case TestDrainAtStartRetiresWithoutDecisions
	// covers).
	for _, policy := range []string{"DRR2-TTL/S_K", "RR2"} {
		cfg := drainCfg(policy, 600)
		cfg.ConstantTTL = 900
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if res.PostDrainMappings != 0 {
			t.Errorf("%s: %d new mappings handed to the draining server", policy, res.PostDrainMappings)
		}
		if res.DrainedServerHits == 0 {
			t.Errorf("%s: no hidden load reached the draining server", policy)
		}
		if res.DeadServerHits != 0 {
			t.Errorf("%s: graceful drain counted %d dead-server hits", policy, res.DeadServerHits)
		}
		if res.Sched.PerServer[0] == 0 {
			t.Errorf("%s: expected pre-drain decisions to server 0", policy)
		}
		if res.PostRemovalHits == 0 && res.LostPages != 0 {
			t.Errorf("%s: %d pages lost without any post-removal traffic", policy, res.LostPages)
		}
	}
}

func TestDrainAtStartRetiresWithoutDecisions(t *testing.T) {
	// Draining before any mapping exists closes the window instantly:
	// the server retires on the spot, gets zero decisions, serves
	// nothing, and loses nothing.
	res, err := Run(drainCfg("DRR2-TTL/S_K", 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sched.PerServer[0] != 0 {
		t.Errorf("%d decisions routed to a server drained at t=0", res.Sched.PerServer[0])
	}
	if res.DrainedServerHits != 0 || res.PostRemovalHits != 0 || res.LostPages != 0 {
		t.Errorf("instant retirement reported traffic: %+v", res)
	}
	if res.MeanServerUtil[0] != 0 {
		t.Errorf("retired server utilization = %v, want 0", res.MeanServerUtil[0])
	}
}

func TestDrainRunDeterminism(t *testing.T) {
	cfg := drainCfg("DRR2-TTL/S_K", 400)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.DrainedServerHits != b.DrainedServerHits || a.PostRemovalHits != b.PostRemovalHits ||
		a.LostPages != b.LostPages || a.TotalHits != b.TotalHits {
		t.Error("drain runs must stay deterministic for a fixed seed")
	}
}
