package sim

import (
	"errors"
	"fmt"
	"math"

	"dnslb/internal/core"
	"dnslb/internal/engine"
	"dnslb/internal/nameserver"
	"dnslb/internal/simcore"
	"dnslb/internal/webserver"
)

// client is one Web client: it belongs to a domain, holds the
// session's server mapping, and cycles think → page burst.
type client struct {
	domain    int
	server    int
	pagesLeft int
}

// drainTracker measures the time-to-drain metric: how long stale
// cached mappings and pointer state keep a recovered server idle. The
// fault injector marks recoveries; the traffic sink closes them when
// traffic first returns.
type drainTracker struct {
	pending     []bool
	recoveredAt []float64
	sum         float64
	n           int
}

func newDrainTracker(servers int) *drainTracker {
	return &drainTracker{
		pending:     make([]bool, servers),
		recoveredAt: make([]float64, servers),
	}
}

// crashed cancels a pending recovery observation: the server went down
// again before any traffic reached it.
func (d *drainTracker) crashed(server int) { d.pending[server] = false }

// recovered marks server as back up at virtual time now.
func (d *drainTracker) recovered(server int, now float64) {
	d.recoveredAt[server] = now
	d.pending[server] = true
}

// served records traffic reaching the server, closing a pending
// recovery observation.
func (d *drainTracker) served(server int, now float64) {
	if !d.pending[server] {
		return
	}
	d.pending[server] = false
	d.sum += now - d.recoveredAt[server]
	d.n++
}

// mean returns the mean observed time-to-drain, or 0 when no recovery
// was observed (or traffic never returned).
func (d *drainTracker) mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// trafficSink receives resolved page bursts and routes them to the Web
// servers, accounting for the failure and retirement states the
// scheduler state machine reports: traffic pinned to retired, dead or
// draining servers is the hidden load the DNS no longer controls.
type trafficSink struct {
	sim     *simcore.Simulator
	state   *core.State
	servers []*webserver.Server
	geo     *core.LatencyMatrix
	recov   *drainTracker
	res     *Result

	// actual, when non-nil, is the detection model's ground truth: a
	// page is lost when its server is actually down, regardless of what
	// the scheduler believes (Config.Detection). Nil means the
	// scheduler's view IS reality (the instant-knowledge bound).
	actual *groundTruth

	latSum  float64
	latHits float64
}

func (t *trafficSink) deliver(domain, server, hits int) {
	if server < 0 {
		// The session could not be resolved: the page is lost.
		t.res.LostPages++
		return
	}
	sn := t.state.Snapshot()
	if !sn.Member(server) {
		// A session outlived the drain window and is still pinned to
		// a retired server: its traffic is lost.
		t.res.PostRemovalHits += uint64(hits)
		t.res.LostPages++
		return
	}
	down := sn.Down(server)
	if t.actual != nil {
		down = t.actual.down[server]
	}
	if down {
		// The server is dead — whether a cached mapping pinned this
		// domain to it or the scheduler has not detected the crash yet.
		// The page is lost until the TTL expires or the server returns.
		t.res.DeadServerHits += uint64(hits)
		t.res.LostPages++
		return
	}
	if sn.Draining(server) {
		t.res.DrainedServerHits += uint64(hits)
	}
	now := t.sim.Now()
	t.recov.served(server, now)
	t.servers[server].Arrive(now, domain, hits)
	if t.geo != nil {
		t.latSum += t.geo.Latency(domain, server) * float64(hits)
		t.latHits += float64(hits)
	}
}

// meanLatencyMS returns the traffic-weighted mean client-to-server
// distance under the geo extension (0 when disabled).
func (t *trafficSink) meanLatencyMS() float64 {
	if t.latHits == 0 {
		return 0
	}
	return t.latSum / t.latHits
}

// cacheTier is the per-domain name-server cache layer between the
// clients and the scheduling engine: lookups hit the domain's cache
// first; misses go to the engine for a fresh decision, whose TTL the
// cache then applies (after any non-cooperative clamp).
type cacheTier struct {
	sim    *simcore.Simulator
	eng    *engine.Engine
	state  *core.State
	caches []*nameserver.Cache
	res    *Result
	fail   func(error)

	// ecs, when non-nil, routes cache misses through the resolver
	// population model (DecideQuery with resolver address and optional
	// client subnet) instead of the direct Decide(domain) call — the
	// misalignment extension (ecs.go). Nil keeps the default path
	// byte-identical to a build without the extension.
	ecs *ecsResolvers
}

func newCacheTier(cfg Config, sim *simcore.Simulator, eng *engine.Engine, res *Result, fail func(error)) (*cacheTier, error) {
	caches := make([]*nameserver.Cache, cfg.Workload.Domains)
	for j := range caches {
		c, err := nameserver.New(cfg.MinNSTTL)
		if err != nil {
			return nil, err
		}
		caches[j] = c
	}
	return &cacheTier{
		sim:    sim,
		eng:    eng,
		state:  eng.State(),
		caches: caches,
		res:    res,
		fail:   fail,
	}, nil
}

// resolve returns the server for a new session of the given domain,
// consulting the domain's NS cache first; -1 when the whole cluster
// is down.
func (ct *cacheTier) resolve(domain int) int {
	return ct.resolveVia(ct.caches[domain], domain)
}

// resolveVia resolves a session for domain through the given NS cache —
// the domain's shared cache on the normal path, a flash crowd's fresh
// resolver cache on the flash path.
func (ct *cacheTier) resolveVia(cache *nameserver.Cache, domain int) int {
	now := ct.sim.Now()
	if server, ok := cache.Lookup(now); ok {
		return server
	}
	var d core.Decision
	var err error
	if ct.ecs != nil {
		var qd engine.QueryDecision
		qd, err = ct.ecs.decide(ct.eng, domain)
		d = qd.Decision
	} else {
		d, err = ct.eng.Decide(domain)
	}
	if err != nil {
		if errors.Is(err, core.ErrNoServers) {
			ct.res.FailedResolves++
			return -1
		}
		ct.fail(err)
		return 0
	}
	ct.res.AddressRequests++
	// The NS-applied TTL (after any non-cooperative clamp) bounds how
	// long this mapping can pin traffic to the chosen server. Decide
	// already noted now+TTL in the engine's ledger; a clamped-up TTL
	// lengthens the outstanding-mapping window past it.
	if effective := cache.Store(now, d.Server, d.TTL); effective > d.TTL {
		ct.eng.NoteMapping(d.Server, now+effective)
	}
	sn := ct.state.Snapshot()
	if sn.Draining(d.Server) || !sn.Member(d.Server) {
		ct.res.PostDrainMappings++
	}
	return d.Server
}

// collect folds the tier's cache counters into the result.
func (ct *cacheTier) collect(res *Result) {
	for _, c := range ct.caches {
		st := c.Stats()
		res.CacheHits += st.Hits
		res.ClampedTTLs += st.Clamped
	}
}

// scheduleClients installs the live client processes: each client
// cycles think → page burst, resolving the site name at each session
// start.
func scheduleClients(cfg Config, sim *simcore.Simulator, deliver func(domain, server, hits int), resolve func(int) int) {
	thinkStream := sim.Stream("think")
	hitsStream := sim.Stream("hits")
	pagesStream := sim.Stream("pages")
	thinks := cfg.Workload.ThinkTimes()
	counts := cfg.Workload.Partition()
	for domain := 0; domain < cfg.Workload.Domains; domain++ {
		if math.IsInf(thinks[domain], 1) {
			continue // perturbation starved this domain entirely
		}
		for c := 0; c < counts[domain]; c++ {
			cl := &client{domain: domain}
			var wake func()
			wake = func() {
				if cl.pagesLeft == 0 {
					cl.server = resolve(cl.domain)
					cl.pagesLeft = pagesStream.Geometric(cfg.Workload.PagesPerSession)
				}
				hits := hitsStream.UniformInt(cfg.Workload.HitsMin, cfg.Workload.HitsMax)
				deliver(cl.domain, cl.server, hits)
				cl.pagesLeft--
				sim.Schedule(thinkStream.Exp(thinks[cl.domain]), wake)
			}
			sim.Schedule(thinkStream.Exp(thinks[domain]), wake)
		}
	}
}

// scheduleTrace installs trace playback: every record becomes one
// arrival event; new-session records re-resolve the client's mapping.
func scheduleTrace(cfg Config, sim *simcore.Simulator, deliver func(domain, server, hits int), resolve func(int) int) error {
	clientServer := make(map[int]int)
	for i := range cfg.Trace {
		rec := cfg.Trace[i]
		if rec.Domain >= cfg.Workload.Domains {
			return fmt.Errorf("sim: trace record %d references domain %d, workload has %d",
				i, rec.Domain, cfg.Workload.Domains)
		}
		sim.ScheduleAt(rec.Time, func() {
			if rec.NewSession {
				clientServer[rec.Client] = resolve(rec.Domain)
			}
			server, ok := clientServer[rec.Client]
			if !ok {
				// Tolerate traces that start mid-session.
				server = resolve(rec.Domain)
				clientServer[rec.Client] = server
			}
			deliver(rec.Domain, server, rec.Hits)
		})
	}
	return nil
}
