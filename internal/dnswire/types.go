// Package dnswire implements the subset of the RFC 1035 DNS wire
// protocol needed to run the adaptive-TTL scheduler as a real
// authoritative name server: message header, questions, resource
// records (A, AAAA, NS, CNAME, SOA, TXT, and raw fallback), and domain
// name encoding with message compression.
//
// The package is self-contained over the standard library and is used
// by internal/dnsserver (authoritative side) and internal/dnsclient
// (stub resolver and caching NS).
package dnswire

import "fmt"

// Type is a DNS resource record type (RFC 1035 §3.2.2).
type Type uint16

// Record types supported or recognized by this package.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	// TypeANY is the QTYPE "*" matching all records (query only).
	TypeANY Type = 255
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeANY:
		return "ANY"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class; only IN is used in practice.
type Class uint16

// Classes.
const (
	ClassIN  Class = 1
	ClassANY Class = 255
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassANY:
		return "ANY"
	default:
		return fmt.Sprintf("CLASS%d", uint16(c))
	}
}

// OpCode is the kind of query (RFC 1035 §4.1.1).
type OpCode uint16

// OpCodes.
const (
	OpQuery  OpCode = 0
	OpIQuery OpCode = 1
	OpStatus OpCode = 2
)

// RCode is a response code (RFC 1035 §4.1.1).
type RCode uint16

// Response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String implements fmt.Stringer.
func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint16(r))
	}
}

// Header is the fixed 12-byte message header (RFC 1035 §4.1.1),
// unpacked into named fields.
type Header struct {
	ID                 uint16
	Response           bool
	OpCode             OpCode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is one entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// Message is a full DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []ResourceRecord
	Authority  []ResourceRecord
	Additional []ResourceRecord
}
