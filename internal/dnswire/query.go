package dnswire

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Pooled zero-allocation query decoding.
//
// Unpack builds a full *Message — name strings, per-section record
// slices, typed RDATA — which costs ~20 heap allocations per query.
// The server's hot path only ever needs the header, the first
// question, and the Client Subnet option, so UnpackQuery decodes
// exactly those into a caller-owned (pooled, reusable) Query with no
// per-query allocations: names land in fixed buffers inside the Query
// and every other record is validated and skipped in place.
//
// UnpackQuery is a strict drop-in for Unpack on the query path: it
// accepts a message if and only if Unpack accepts it, and agrees with
// Unpack on the header, the first question, and the extracted ECS
// option (FuzzUnpackPooled and TestUnpackQueryMatchesUnpack enforce
// the equivalence differentially).

// Query is the decoded view of one request, sized for the server's
// hot path. Name slices point into buffers inside the Query, so a
// Query must not be reused while any field from the previous decode
// is still referenced.
type Query struct {
	Header Header
	// QDCount is the question-section count; the server answers only
	// messages with at least one question.
	QDCount int
	// Name is the first question's canonical name (lower-case, exactly
	// one trailing dot, "." for the root), valid until the next
	// UnpackQuery on this Query.
	Name  []byte
	Type  Type
	Class Class
	// HasECS reports whether the additional section carried a
	// well-formed RFC 7871 Client Subnet option; ECS is its content.
	HasECS bool
	ECS    ClientSubnet

	// ecsDone marks that an ECS option was already encountered (well
	// formed or not); later OPT records no longer matter, mirroring
	// (*Message).ClientSubnet's early return.
	ecsDone bool

	// nameBuf backs Name; scratch backs the validation-only scans of
	// every other name in the message. Presentation names are at most
	// maxNameLen-1 bytes, so maxNameLen is enough for both.
	nameBuf [maxNameLen]byte
	scratch [maxNameLen]byte
}

// queryPool recycles Query structs across requests; GetQuery/PutQuery
// are the server's per-datagram bracket.
var queryPool = sync.Pool{New: func() any { return new(Query) }}

// GetQuery returns a pooled Query for UnpackQuery.
func GetQuery() *Query { return queryPool.Get().(*Query) }

// PutQuery returns a Query to the pool. The caller must not retain
// any slice obtained from it.
func PutQuery(q *Query) { queryPool.Put(q) }

// reset clears the per-message fields (the backing arrays need no
// clearing; Name is re-sliced on every decode).
func (q *Query) reset() {
	q.Header = Header{}
	q.QDCount = 0
	q.Name = nil
	q.Type = 0
	q.Class = 0
	q.HasECS = false
	q.ECS = ClientSubnet{}
	q.ecsDone = false
}

// UnpackQuery decodes a wire-format message into q without heap
// allocation. It validates the entire message with the same rules as
// Unpack — the server's FORMERR behavior must not depend on which
// decoder ran — but only materializes the header, the first question,
// and the first Client Subnet option.
func (q *Query) UnpackQuery(msg []byte) error {
	q.reset()
	if len(msg) < headerLen {
		return ErrTruncatedMessage
	}
	q.Header.ID = binary.BigEndian.Uint16(msg[0:])
	flags := binary.BigEndian.Uint16(msg[2:])
	q.Header.Response = flags&flagQR != 0
	q.Header.OpCode = OpCode(flags >> 11 & 0xF)
	q.Header.Authoritative = flags&flagAA != 0
	q.Header.Truncated = flags&flagTC != 0
	q.Header.RecursionDesired = flags&flagRD != 0
	q.Header.RecursionAvailable = flags&flagRA != 0
	q.Header.RCode = RCode(flags & 0xF)
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))
	if qd > maxRecords || an > maxRecords || ns > maxRecords || ar > maxRecords {
		return ErrTooManyRecords
	}
	q.QDCount = qd

	off := headerLen
	for i := 0; i < qd; i++ {
		dst := q.scratch[:]
		if i == 0 {
			dst = q.nameBuf[:]
		}
		n, next, err := scanName(msg, off, dst)
		if err != nil {
			return fmt.Errorf("question %d: %w", i, err)
		}
		off = next
		if off+4 > len(msg) {
			return ErrTruncatedMessage
		}
		if i == 0 {
			q.Name = q.nameBuf[:n]
			q.Type = Type(binary.BigEndian.Uint16(msg[off:]))
			q.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
		}
		off += 4
	}
	// The answer and authority sections are validated and skipped; the
	// additional section is additionally scanned for the first OPT
	// record carrying a Client Subnet option, mirroring
	// (*Message).ClientSubnet's "first OPT, first ECS option" rule.
	var err error
	for _, sec := range [3]struct {
		n   int
		ecs bool
	}{{an, false}, {ns, false}, {ar, true}} {
		for i := 0; i < sec.n; i++ {
			off, err = q.scanRR(msg, off, sec.ecs)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// scanRR validates one resource record starting at off and returns
// the offset past it. When ecs is true (additional section) and no
// OPT record has resolved the ECS question yet, OPT records are
// scanned for the Client Subnet option.
func (q *Query) scanRR(msg []byte, off int, ecs bool) (int, error) {
	_, off, err := scanName(msg, off, q.scratch[:])
	if err != nil {
		return 0, err
	}
	if off+10 > len(msg) {
		return 0, ErrTruncatedMessage
	}
	typ := Type(binary.BigEndian.Uint16(msg[off:]))
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdlen > len(msg) {
		return 0, ErrTruncatedMessage
	}
	if err := q.validRData(msg, off, rdlen, typ); err != nil {
		return 0, err
	}
	if ecs && typ == TypeOPT && !q.ecsDone {
		q.ecsDone = q.ecsResolved(msg, off, rdlen)
	}
	return off + rdlen, nil
}

// ecsResolved scans one OPT RDATA for the first Client Subnet option.
// It returns true when an ECS option was found — whether it parsed
// (HasECS set) or not (ECS absent for this message, matching
// ClientSubnet's early false return) — so the caller stops consulting
// further OPT records. The TLV structure is already validated by
// validRData.
func (q *Query) ecsResolved(msg []byte, off, n int) bool {
	end := off + n
	for off < end {
		code := binary.BigEndian.Uint16(msg[off:])
		l := int(binary.BigEndian.Uint16(msg[off+2:]))
		off += 4
		if code == OptionClientSubnet {
			cs, err := ParseClientSubnet(msg[off : off+l])
			if err == nil {
				q.HasECS = true
				q.ECS = cs
			}
			return true
		}
		off += l
	}
	return false
}

// validRData applies unpackRData's validation for the given type
// without materializing the payload.
func (q *Query) validRData(msg []byte, off, n int, typ Type) error {
	switch typ {
	case TypeA:
		if n != 4 {
			return fmt.Errorf("dnswire: A RDATA length %d, want 4", n)
		}
	case TypeAAAA:
		if n != 16 {
			return fmt.Errorf("dnswire: AAAA RDATA length %d, want 16", n)
		}
	case TypeCNAME, TypeNS, TypePTR:
		if _, _, err := scanName(msg, off, q.scratch[:]); err != nil {
			return err
		}
	case TypeTXT:
		end := off + n
		count := 0
		for off < end {
			l := int(msg[off])
			off++
			if off+l > end {
				return ErrTruncatedMessage
			}
			off += l
			count++
		}
		if count == 0 {
			return errEmptyTXT
		}
	case TypeSOA:
		_, next, err := scanName(msg, off, q.scratch[:])
		if err != nil {
			return err
		}
		_, next, err = scanName(msg, next, q.scratch[:])
		if err != nil {
			return err
		}
		if next+20 > len(msg) || next+20 > off+n {
			return ErrTruncatedMessage
		}
	case TypeOPT:
		end := off + n
		for off < end {
			if off+4 > end {
				return ErrTruncatedMessage
			}
			l := int(binary.BigEndian.Uint16(msg[off+2:]))
			off += 4
			if off+l > end {
				return ErrTruncatedMessage
			}
			off += l
		}
	}
	return nil
}

// errEmptyTXT mirrors unpackRData's empty-TXT rejection.
var errEmptyTXT = fmt.Errorf("dnswire: empty TXT RDATA")

// scanName decodes a possibly compressed name starting at off into
// dst (which must have room for maxNameLen bytes), lower-cased and in
// canonical presentation form with a trailing dot ("." for the root).
// It returns the number of bytes written and the offset just past the
// name in the original byte stream, applying exactly unpackName's
// validation: truncation, reserved label types, pointer loops and
// forward pointers, and the 255-octet name bound. When the name
// overflows the bound, scanning continues without writing so that
// truncation or loop errors take precedence, as they do in unpackName
// (which validates the length only at the terminating label).
func scanName(msg []byte, off int, dst []byte) (n, next int, err error) {
	jumped := false
	over := false
	next = off
	jumps := 0
	for {
		if off >= len(msg) {
			return 0, 0, ErrTruncatedMessage
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				next = off + 1
			}
			if over {
				return 0, 0, ErrNameTooLong
			}
			if n == 0 {
				dst[0] = '.'
				n = 1
			}
			return n, next, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return 0, 0, ErrTruncatedMessage
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if !jumped {
				next = off + 2
				jumped = true
			}
			jumps++
			if jumps > maxPointerJumps {
				return 0, 0, ErrPointerLoop
			}
			if ptr >= off {
				return 0, 0, ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return 0, 0, fmt.Errorf("%w: reserved label type 0x%02x", ErrBadName, b&0xC0)
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return 0, 0, ErrTruncatedMessage
			}
			// The presentation form "a.b." is one byte shorter than the
			// wire form's 255-octet bound (the root byte), so the name
			// fits the bound iff it fits maxNameLen-1 presentation bytes.
			if !over && n+l+1 > maxNameLen-1 {
				over = true
			}
			if !over {
				for i := 0; i < l; i++ {
					c := msg[off+1+i]
					if 'A' <= c && c <= 'Z' {
						c += 'a' - 'A'
					}
					dst[n] = c
					n++
				}
				dst[n] = '.'
				n++
			}
			off += 1 + l
			if !jumped {
				next = off
			}
		}
	}
}
