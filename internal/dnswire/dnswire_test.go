package dnswire

import (
	"bytes"
	"errors"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalName(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"Example.COM", "example.com."},
		{"example.com.", "example.com."},
		{"", "."},
		{".", "."},
		{"WWW.site.org", "www.site.org."},
	}
	for _, tt := range tests {
		if got := CanonicalName(tt.in); got != tt.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestPackNameGolden(t *testing.T) {
	buf, err := packName(nil, "www.example.com", make(map[string]int))
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{3, 'w', 'w', 'w', 7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0}
	if !bytes.Equal(buf, want) {
		t.Errorf("packed = %v, want %v", buf, want)
	}
}

func TestPackNameRoot(t *testing.T) {
	buf, err := packName(nil, ".", make(map[string]int))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{0}) {
		t.Errorf("root name packed = %v, want [0]", buf)
	}
}

func TestNameCompression(t *testing.T) {
	cmap := make(map[string]int)
	buf, err := packName(nil, "www.example.com", cmap)
	if err != nil {
		t.Fatal(err)
	}
	plain := len(buf)
	buf, err = packName(buf, "ftp.example.com", cmap)
	if err != nil {
		t.Fatal(err)
	}
	// Second name should be label "ftp" (4 bytes) + 2-byte pointer.
	if len(buf)-plain != 6 {
		t.Errorf("compressed second name uses %d bytes, want 6", len(buf)-plain)
	}
	// Round-trip both names.
	n1, off, err := unpackName(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != "www.example.com." {
		t.Errorf("first name = %q", n1)
	}
	n2, _, err := unpackName(buf, off)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != "ftp.example.com." {
		t.Errorf("second name = %q", n2)
	}
}

func TestNameValidation(t *testing.T) {
	if _, err := packName(nil, strings.Repeat("a", 64)+".com", make(map[string]int)); !errors.Is(err, ErrLabelTooLong) {
		t.Errorf("63+ label: err = %v, want ErrLabelTooLong", err)
	}
	long := strings.Repeat("abcdefgh.", 32) // 288 bytes
	if _, err := packName(nil, long, make(map[string]int)); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("long name: err = %v, want ErrNameTooLong", err)
	}
	if _, err := packName(nil, "a..b", make(map[string]int)); !errors.Is(err, ErrBadName) {
		t.Errorf("empty label: err = %v, want ErrBadName", err)
	}
}

func TestUnpackNameHostile(t *testing.T) {
	// Self-pointing compression pointer.
	loop := []byte{0xC0, 0x00}
	if _, _, err := unpackName(loop, 0); err == nil {
		t.Error("self-pointer should fail")
	}
	// Pointer to a pointer chain that loops between two offsets.
	chain := []byte{0xC0, 0x02, 0xC0, 0x00}
	if _, _, err := unpackName(chain, 0); err == nil {
		t.Error("pointer loop should fail")
	}
	// Truncated label.
	trunc := []byte{5, 'a', 'b'}
	if _, _, err := unpackName(trunc, 0); !errors.Is(err, ErrTruncatedMessage) {
		t.Errorf("truncated label: err = %v", err)
	}
	// Reserved label type 0x80.
	reserved := []byte{0x80, 0x00}
	if _, _, err := unpackName(reserved, 0); err == nil {
		t.Error("reserved label type should fail")
	}
	// Missing terminator.
	noend := []byte{1, 'a'}
	if _, _, err := unpackName(noend, 0); !errors.Is(err, ErrTruncatedMessage) {
		t.Errorf("unterminated name: err = %v", err)
	}
}

func TestUnpackNameCaseFolds(t *testing.T) {
	buf := []byte{3, 'W', 'w', 'W', 0}
	name, _, err := unpackName(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if name != "www." {
		t.Errorf("name = %q, want case-folded %q", name, "www.")
	}
}

func queryMessage(id uint16, name string, typ Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: typ, Class: ClassIN}},
	}
}

func TestQueryGoldenBytes(t *testing.T) {
	m := queryMessage(0x1234, "example.com", TypeA)
	got, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0x12, 0x34, // ID
		0x01, 0x00, // RD set
		0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0,
		0x00, 0x01, // QTYPE A
		0x00, 0x01, // QCLASS IN
	}
	if !bytes.Equal(got, want) {
		t.Errorf("packed query =\n%v, want\n%v", got, want)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{
			ID: 777, Response: true, Authoritative: true,
			RecursionDesired: true, RecursionAvailable: true,
			OpCode: OpQuery, RCode: RCodeNoError,
		},
		Questions: []Question{{Name: "web.site.example.", Type: TypeA, Class: ClassIN}},
		Answers: []ResourceRecord{
			{Name: "web.site.example.", Type: TypeA, Class: ClassIN, TTL: 120,
				Data: A{Addr: netip.MustParseAddr("10.1.2.3")}},
			{Name: "web.site.example.", Type: TypeA, Class: ClassIN, TTL: 120,
				Data: A{Addr: netip.MustParseAddr("10.1.2.4")}},
		},
		Authority: []ResourceRecord{
			{Name: "site.example.", Type: TypeNS, Class: ClassIN, TTL: 3600,
				Data: NS{Host: "ns1.site.example."}},
		},
		Additional: []ResourceRecord{
			{Name: "ns1.site.example.", Type: TypeAAAA, Class: ClassIN, TTL: 3600,
				Data: AAAA{Addr: netip.MustParseAddr("2001:db8::1")}},
			{Name: "info.site.example.", Type: TypeTXT, Class: ClassIN, TTL: 60,
				Data: TXT{Strings: []string{"policy=DRR2-TTL/S_K", "v=1"}}},
		},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestSOARoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{ID: 1, Response: true, RCode: RCodeNXDomain},
		Authority: []ResourceRecord{
			{Name: "example.", Type: TypeSOA, Class: ClassIN, TTL: 300, Data: SOA{
				MName: "ns1.example.", RName: "hostmaster.example.",
				Serial: 2026070401, Refresh: 7200, Retry: 600, Expire: 86400, Minimum: 60,
			}},
		},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	soa, ok := got.Authority[0].Data.(SOA)
	if !ok {
		t.Fatalf("authority data is %T", got.Authority[0].Data)
	}
	if soa.Serial != 2026070401 || soa.Minimum != 60 || soa.MName != "ns1.example." {
		t.Errorf("SOA = %+v", soa)
	}
}

func TestCNAMEAndPTRRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{ID: 5, Response: true},
		Answers: []ResourceRecord{
			{Name: "alias.example.", Type: TypeCNAME, Class: ClassIN, TTL: 30,
				Data: CNAME{Target: "real.example."}},
			{Name: "4.3.2.1.in-addr.arpa.", Type: TypePTR, Class: ClassIN, TTL: 30,
				Data: PTR{Target: "host.example."}},
		},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Data.(CNAME).Target != "real.example." {
		t.Errorf("CNAME = %+v", got.Answers[0].Data)
	}
	if got.Answers[1].Data.(PTR).Target != "host.example." {
		t.Errorf("PTR = %+v", got.Answers[1].Data)
	}
}

func TestRawRecordRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{ID: 9, Response: true},
		Answers: []ResourceRecord{
			{Name: "x.example.", Type: Type(99), Class: ClassIN, TTL: 10,
				Data: Raw{Type: Type(99), Data: []byte{1, 2, 3, 4}}},
		},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := got.Answers[0].Data.(Raw)
	if !ok || !bytes.Equal(raw.Data, []byte{1, 2, 3, 4}) {
		t.Errorf("raw = %+v", got.Answers[0].Data)
	}
}

func TestPackValidation(t *testing.T) {
	// A record with IPv6 address fails.
	m := &Message{Answers: []ResourceRecord{{
		Name: "a.example.", Type: TypeA, Class: ClassIN,
		Data: A{Addr: netip.MustParseAddr("::1")},
	}}}
	if _, err := m.Pack(); err == nil {
		t.Error("IPv6 in A record should fail")
	}
	// AAAA with IPv4 fails.
	m = &Message{Answers: []ResourceRecord{{
		Name: "a.example.", Type: TypeAAAA, Class: ClassIN,
		Data: AAAA{Addr: netip.MustParseAddr("1.2.3.4")},
	}}}
	if _, err := m.Pack(); err == nil {
		t.Error("IPv4 in AAAA record should fail")
	}
	// Record without data fails.
	m = &Message{Answers: []ResourceRecord{{Name: "a.example.", Type: TypeA, Class: ClassIN}}}
	if _, err := m.Pack(); err == nil {
		t.Error("record without data should fail")
	}
	// Empty TXT fails.
	m = &Message{Answers: []ResourceRecord{{
		Name: "a.example.", Type: TypeTXT, Class: ClassIN, Data: TXT{},
	}}}
	if _, err := m.Pack(); err == nil {
		t.Error("empty TXT should fail")
	}
	// Oversized TXT string fails.
	m = &Message{Answers: []ResourceRecord{{
		Name: "a.example.", Type: TypeTXT, Class: ClassIN,
		Data: TXT{Strings: []string{strings.Repeat("x", 256)}},
	}}}
	if _, err := m.Pack(); err == nil {
		t.Error("oversized TXT string should fail")
	}
}

func TestUnpackHostileMessages(t *testing.T) {
	if _, err := Unpack(nil); !errors.Is(err, ErrTruncatedMessage) {
		t.Errorf("nil message: %v", err)
	}
	if _, err := Unpack(make([]byte, 5)); !errors.Is(err, ErrTruncatedMessage) {
		t.Errorf("short message: %v", err)
	}
	// Claims one question but has none.
	h := make([]byte, 12)
	h[5] = 1
	if _, err := Unpack(h); !errors.Is(err, ErrTruncatedMessage) {
		t.Errorf("missing question: %v", err)
	}
	// Claims absurd record counts.
	h = make([]byte, 12)
	h[6], h[7] = 0xFF, 0xFF
	if _, err := Unpack(h); !errors.Is(err, ErrTooManyRecords) {
		t.Errorf("absurd counts: %v", err)
	}
}

func TestUnpackDoesNotPanicOnFuzzedInput(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Unpack(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(id uint16, a, b, c byte, ttl uint32) bool {
		name := CanonicalName(strings.Trim(string([]byte{
			'a' + a%26, 'b' + b%24, '.', 'z', 'a' + c%26,
		}), "."))
		m := &Message{
			Header:    Header{ID: id, Response: true, Authoritative: true},
			Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}},
			Answers: []ResourceRecord{{
				Name: name, Type: TypeA, Class: ClassIN, TTL: ttl,
				Data: A{Addr: netip.AddrFrom4([4]byte{10, a, b, c})},
			}},
		}
		wire, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeClassRCodeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeAAAA.String() != "AAAA" || Type(1000).String() != "TYPE1000" {
		t.Error("Type strings wrong")
	}
	if ClassIN.String() != "IN" || Class(7).String() != "CLASS7" || ClassANY.String() != "ANY" {
		t.Error("Class strings wrong")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(15).String() != "RCODE15" {
		t.Error("RCode strings wrong")
	}
	if TypeCNAME.String() != "CNAME" || TypeSOA.String() != "SOA" || TypeNS.String() != "NS" ||
		TypePTR.String() != "PTR" || TypeMX.String() != "MX" || TypeTXT.String() != "TXT" ||
		TypeANY.String() != "ANY" {
		t.Error("remaining Type strings wrong")
	}
	if RCodeNoError.String() != "NOERROR" || RCodeFormErr.String() != "FORMERR" ||
		RCodeServFail.String() != "SERVFAIL" || RCodeNotImp.String() != "NOTIMP" ||
		RCodeRefused.String() != "REFUSED" {
		t.Error("remaining RCode strings wrong")
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	for _, h := range []Header{
		{ID: 1},
		{ID: 2, Response: true, RCode: RCodeServFail},
		{ID: 3, Truncated: true, OpCode: OpStatus},
		{ID: 4, Authoritative: true, RecursionDesired: true, RecursionAvailable: true},
	} {
		m := &Message{Header: h}
		wire, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Fatal(err)
		}
		if got.Header != h {
			t.Errorf("header round trip: got %+v, want %+v", got.Header, h)
		}
	}
}
