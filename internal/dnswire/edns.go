package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// EDNS(0) support (RFC 6891) and the Client Subnet option (RFC 7871).
//
// The paper predates EDNS, but its central problem — identifying the
// *client domain* behind an address request when the DNS only sees the
// recursive resolver — is solved today by the Client Subnet option:
// resolvers attach the querying client's network prefix. The server
// side (internal/dnsserver) prefers an ECS prefix over the transport
// source address when classifying the originating domain, which is how
// a modern deployment of the paper's algorithms would obtain the
// per-domain signal.

// TypeOPT is the EDNS(0) pseudo-record type.
const TypeOPT Type = 41

// EDNS option codes.
const (
	// OptionClientSubnet is the RFC 7871 Client Subnet option code.
	OptionClientSubnet uint16 = 8
)

// ErrBadClientSubnet reports a malformed ECS option.
var ErrBadClientSubnet = errors.New("dnswire: bad client subnet option")

// OPT is the EDNS(0) pseudo-record payload: a list of (code, data)
// options. The record's Class carries the sender's UDP payload size
// and the TTL field carries extended RCODE/version/flags; helpers on
// Message manage those fields.
type OPT struct {
	Options []EDNSOption
}

// EDNSOption is one EDNS option TLV.
type EDNSOption struct {
	Code uint16
	Data []byte
}

// RType implements RData.
func (OPT) RType() Type { return TypeOPT }

func (o OPT) packData(buf []byte, _ map[string]int) ([]byte, error) {
	for _, opt := range o.Options {
		if len(opt.Data) > 0xFFFF {
			return nil, fmt.Errorf("dnswire: EDNS option %d data too large", opt.Code)
		}
		buf = binary.BigEndian.AppendUint16(buf, opt.Code)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(opt.Data)))
		buf = append(buf, opt.Data...)
	}
	return buf, nil
}

// unpackOPT decodes the option list of an OPT record.
func unpackOPT(data []byte) (OPT, error) {
	var o OPT
	off := 0
	for off < len(data) {
		if off+4 > len(data) {
			return o, ErrTruncatedMessage
		}
		code := binary.BigEndian.Uint16(data[off:])
		n := int(binary.BigEndian.Uint16(data[off+2:]))
		off += 4
		if off+n > len(data) {
			return o, ErrTruncatedMessage
		}
		payload := make([]byte, n)
		copy(payload, data[off:off+n])
		o.Options = append(o.Options, EDNSOption{Code: code, Data: payload})
		off += n
	}
	return o, nil
}

// ClientSubnet is the RFC 7871 option content: the client's network
// prefix as seen by the recursive resolver.
type ClientSubnet struct {
	// Prefix is the client network (address + source prefix length).
	Prefix netip.Prefix
	// ScopePrefixLen is the prefix length the authority's answer is
	// valid for (0 in queries).
	ScopePrefixLen uint8
}

// families per RFC 7871 §6 (address family numbers).
const (
	ecsFamilyIPv4 = 1
	ecsFamilyIPv6 = 2
)

// Pack encodes the option payload.
func (cs ClientSubnet) Pack() ([]byte, error) {
	if !cs.Prefix.IsValid() {
		return nil, ErrBadClientSubnet
	}
	addr := cs.Prefix.Addr()
	family := ecsFamilyIPv4
	if addr.Is6() && !addr.Is4In6() {
		family = ecsFamilyIPv6
	}
	bits := cs.Prefix.Bits()
	// Address bytes: only ceil(bits/8) octets are sent, with unused
	// trailing bits zeroed (the Prefix is already masked).
	var raw []byte
	if family == ecsFamilyIPv4 {
		b := addr.As4()
		raw = b[:]
	} else {
		b := addr.As16()
		raw = b[:]
	}
	n := (bits + 7) / 8
	out := make([]byte, 0, 4+n)
	out = binary.BigEndian.AppendUint16(out, uint16(family))
	out = append(out, byte(bits), cs.ScopePrefixLen)
	out = append(out, raw[:n]...)
	return out, nil
}

// ParseClientSubnet decodes an ECS option payload.
func ParseClientSubnet(data []byte) (ClientSubnet, error) {
	var cs ClientSubnet
	if len(data) < 4 {
		return cs, ErrBadClientSubnet
	}
	family := binary.BigEndian.Uint16(data[0:])
	bits := int(data[2])
	cs.ScopePrefixLen = data[3]
	payload := data[4:]
	n := (bits + 7) / 8
	if len(payload) < n {
		return cs, ErrBadClientSubnet
	}
	var addr netip.Addr
	switch family {
	case ecsFamilyIPv4:
		if bits > 32 {
			return cs, ErrBadClientSubnet
		}
		var b [4]byte
		copy(b[:], payload[:n])
		addr = netip.AddrFrom4(b)
	case ecsFamilyIPv6:
		if bits > 128 {
			return cs, ErrBadClientSubnet
		}
		var b [16]byte
		copy(b[:], payload[:n])
		addr = netip.AddrFrom16(b)
	default:
		return cs, fmt.Errorf("%w: family %d", ErrBadClientSubnet, family)
	}
	p, err := addr.Prefix(bits)
	if err != nil {
		return cs, fmt.Errorf("%w: %v", ErrBadClientSubnet, err)
	}
	cs.Prefix = p
	return cs, nil
}

// EchoClientSubnet builds the response-side ECS option for a query's
// option per RFC 7871 §7.2.2: FAMILY, SOURCE PREFIX-LENGTH and ADDRESS
// are echoed unchanged, and SCOPE PREFIX-LENGTH announces how broadly
// the answer may be reused — the honoured source prefix when the
// answer was tailored to the client's subnet, 0 when it was not.
func EchoClientSubnet(query ClientSubnet, scope uint8) ClientSubnet {
	query.ScopePrefixLen = scope
	return query
}

// SetClientSubnet attaches (or replaces) an EDNS OPT record carrying
// the given client subnet to the message's additional section.
// udpPayload advertises the sender's reassembly size (RFC 6891);
// values below 512 are raised to 512.
func (m *Message) SetClientSubnet(cs ClientSubnet, udpPayload uint16) error {
	data, err := cs.Pack()
	if err != nil {
		return err
	}
	if udpPayload < MaxUDPPayload {
		udpPayload = MaxUDPPayload
	}
	opt := ResourceRecord{
		Name:  ".",
		Type:  TypeOPT,
		Class: Class(udpPayload),
		Data:  OPT{Options: []EDNSOption{{Code: OptionClientSubnet, Data: data}}},
	}
	// Replace an existing OPT record if present (only one is allowed).
	for i, rr := range m.Additional {
		if rr.Type == TypeOPT {
			m.Additional[i] = opt
			return nil
		}
	}
	m.Additional = append(m.Additional, opt)
	return nil
}

// ClientSubnet extracts the ECS option from the message's OPT record.
// ok is false when the message carries none.
func (m *Message) ClientSubnet() (cs ClientSubnet, ok bool) {
	for _, rr := range m.Additional {
		opt, isOpt := rr.Data.(OPT)
		if !isOpt {
			continue
		}
		for _, o := range opt.Options {
			if o.Code != OptionClientSubnet {
				continue
			}
			parsed, err := ParseClientSubnet(o.Data)
			if err != nil {
				return ClientSubnet{}, false
			}
			return parsed, true
		}
	}
	return ClientSubnet{}, false
}
