package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// ResourceRecord is one record of the answer, authority, or additional
// section.
type ResourceRecord struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

// RData is the typed payload of a resource record.
type RData interface {
	// RType returns the record type the payload belongs to.
	RType() Type
	// packData appends the RDATA encoding (without the length prefix).
	// Compressible names inside RDATA use cmap relative to the whole
	// message.
	packData(buf []byte, cmap map[string]int) ([]byte, error)
}

// A is an IPv4 address record payload.
type A struct {
	Addr netip.Addr
}

// RType implements RData.
func (A) RType() Type { return TypeA }

func (a A) packData(buf []byte, _ map[string]int) ([]byte, error) {
	if !a.Addr.Is4() {
		return nil, fmt.Errorf("dnswire: A record address %v is not IPv4", a.Addr)
	}
	b4 := a.Addr.As4()
	return append(buf, b4[:]...), nil
}

// AAAA is an IPv6 address record payload.
type AAAA struct {
	Addr netip.Addr
}

// RType implements RData.
func (AAAA) RType() Type { return TypeAAAA }

func (a AAAA) packData(buf []byte, _ map[string]int) ([]byte, error) {
	if !a.Addr.Is6() || a.Addr.Is4In6() {
		return nil, fmt.Errorf("dnswire: AAAA record address %v is not IPv6", a.Addr)
	}
	b16 := a.Addr.As16()
	return append(buf, b16[:]...), nil
}

// CNAME is a canonical-name record payload.
type CNAME struct {
	Target string
}

// RType implements RData.
func (CNAME) RType() Type { return TypeCNAME }

func (c CNAME) packData(buf []byte, cmap map[string]int) ([]byte, error) {
	return packName(buf, c.Target, cmap)
}

// NS is a name-server record payload.
type NS struct {
	Host string
}

// RType implements RData.
func (NS) RType() Type { return TypeNS }

func (n NS) packData(buf []byte, cmap map[string]int) ([]byte, error) {
	return packName(buf, n.Host, cmap)
}

// PTR is a pointer record payload.
type PTR struct {
	Target string
}

// RType implements RData.
func (PTR) RType() Type { return TypePTR }

func (p PTR) packData(buf []byte, cmap map[string]int) ([]byte, error) {
	return packName(buf, p.Target, cmap)
}

// TXT is a text record payload: one or more character strings.
type TXT struct {
	Strings []string
}

// RType implements RData.
func (TXT) RType() Type { return TypeTXT }

func (t TXT) packData(buf []byte, _ map[string]int) ([]byte, error) {
	if len(t.Strings) == 0 {
		return nil, errors.New("dnswire: TXT record needs at least one string")
	}
	for _, s := range t.Strings {
		if len(s) > 255 {
			return nil, fmt.Errorf("dnswire: TXT string of %d bytes exceeds 255", len(s))
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

// SOA is a start-of-authority record payload.
type SOA struct {
	MName   string // primary name server
	RName   string // responsible mailbox
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// RType implements RData.
func (SOA) RType() Type { return TypeSOA }

func (s SOA) packData(buf []byte, cmap map[string]int) ([]byte, error) {
	var err error
	buf, err = packName(buf, s.MName, cmap)
	if err != nil {
		return nil, err
	}
	buf, err = packName(buf, s.RName, cmap)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint32(buf, s.Serial)
	buf = binary.BigEndian.AppendUint32(buf, s.Refresh)
	buf = binary.BigEndian.AppendUint32(buf, s.Retry)
	buf = binary.BigEndian.AppendUint32(buf, s.Expire)
	buf = binary.BigEndian.AppendUint32(buf, s.Minimum)
	return buf, nil
}

// Raw is an uninterpreted payload carrying any record type this
// package does not model.
type Raw struct {
	Type Type
	Data []byte
}

// RType implements RData.
func (r Raw) RType() Type { return r.Type }

func (r Raw) packData(buf []byte, _ map[string]int) ([]byte, error) {
	return append(buf, r.Data...), nil
}

// unpackRData decodes the RDATA of the given type from msg[off:off+n].
func unpackRData(msg []byte, off, n int, typ Type) (RData, error) {
	if off+n > len(msg) {
		return nil, ErrTruncatedMessage
	}
	switch typ {
	case TypeA:
		if n != 4 {
			return nil, fmt.Errorf("dnswire: A RDATA length %d, want 4", n)
		}
		var b4 [4]byte
		copy(b4[:], msg[off:off+4])
		return A{Addr: netip.AddrFrom4(b4)}, nil
	case TypeAAAA:
		if n != 16 {
			return nil, fmt.Errorf("dnswire: AAAA RDATA length %d, want 16", n)
		}
		var b16 [16]byte
		copy(b16[:], msg[off:off+16])
		return AAAA{Addr: netip.AddrFrom16(b16)}, nil
	case TypeCNAME:
		name, _, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		return CNAME{Target: name}, nil
	case TypeNS:
		name, _, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		return NS{Host: name}, nil
	case TypePTR:
		name, _, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		return PTR{Target: name}, nil
	case TypeTXT:
		var out []string
		end := off + n
		for off < end {
			l := int(msg[off])
			off++
			if off+l > end {
				return nil, ErrTruncatedMessage
			}
			out = append(out, string(msg[off:off+l]))
			off += l
		}
		if len(out) == 0 {
			return nil, errors.New("dnswire: empty TXT RDATA")
		}
		return TXT{Strings: out}, nil
	case TypeSOA:
		m, next, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		r, next, err := unpackName(msg, next)
		if err != nil {
			return nil, err
		}
		if next+20 > len(msg) || next+20 > off+n {
			return nil, ErrTruncatedMessage
		}
		return SOA{
			MName:   m,
			RName:   r,
			Serial:  binary.BigEndian.Uint32(msg[next:]),
			Refresh: binary.BigEndian.Uint32(msg[next+4:]),
			Retry:   binary.BigEndian.Uint32(msg[next+8:]),
			Expire:  binary.BigEndian.Uint32(msg[next+12:]),
			Minimum: binary.BigEndian.Uint32(msg[next+16:]),
		}, nil
	case TypeOPT:
		return unpackOPT(msg[off : off+n])
	default:
		data := make([]byte, n)
		copy(data, msg[off:off+n])
		return Raw{Type: typ, Data: data}, nil
	}
}
