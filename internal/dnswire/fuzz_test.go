package dnswire

import (
	"net/netip"
	"testing"
)

// FuzzUnpack exercises the decoder against arbitrary bytes: it must
// never panic, and anything it accepts must re-encode and re-decode to
// an equivalent header.
func FuzzUnpack(f *testing.F) {
	seed := func(m *Message) {
		wire, err := m.Pack()
		if err == nil {
			f.Add(wire)
		}
	}
	seed(queryMessage(1, "example.com", TypeA))
	seed(&Message{
		Header:    Header{ID: 2, Response: true, Authoritative: true},
		Questions: []Question{{Name: "a.b.c.example.", Type: TypeA, Class: ClassIN}},
		Answers: []ResourceRecord{{
			Name: "a.b.c.example.", Type: TypeA, Class: ClassIN, TTL: 300,
			Data: A{Addr: netip.MustParseAddr("10.0.0.1")},
		}},
		Authority: []ResourceRecord{{
			Name: "example.", Type: TypeSOA, Class: ClassIN, TTL: 60,
			Data: SOA{MName: "ns.example.", RName: "root.example.", Serial: 1},
		}},
	})
	f.Add([]byte{0xC0, 0x00})
	f.Add(make([]byte, 12))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		// Round-trip what we accepted: repack may legitimately fail for
		// semantic reasons (e.g. empty TXT decoded from a permissive
		// path must not exist), but if it succeeds, the second decode
		// must agree on the header and section sizes.
		wire, err := m.Pack()
		if err != nil {
			return
		}
		m2, err := Unpack(wire)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if m2.Header != m.Header {
			t.Fatalf("header changed across round trip: %+v vs %+v", m.Header, m2.Header)
		}
		if len(m2.Questions) != len(m.Questions) ||
			len(m2.Answers) != len(m.Answers) ||
			len(m2.Authority) != len(m.Authority) ||
			len(m2.Additional) != len(m.Additional) {
			t.Fatal("section sizes changed across round trip")
		}
	})
}

// FuzzUnpackName targets the name decompressor directly, the riskiest
// part of the decoder (pointer loops, truncation).
func FuzzUnpackName(f *testing.F) {
	f.Add([]byte{3, 'w', 'w', 'w', 0}, 0)
	f.Add([]byte{0xC0, 0x00}, 0)
	f.Add([]byte{1, 'a', 0xC0, 0x00}, 2)
	f.Fuzz(func(t *testing.T, data []byte, off int) {
		if off < 0 || off > len(data) {
			return
		}
		name, next, err := unpackName(data, off)
		if err != nil {
			return
		}
		if next < off && next != 0 {
			t.Fatalf("next offset %d went backwards from %d", next, off)
		}
		// Accepted names must satisfy the validator and re-encode.
		if err := validateName(name); err != nil {
			t.Fatalf("accepted invalid name %q: %v", name, err)
		}
		if _, err := packName(nil, name, make(map[string]int)); err != nil {
			t.Fatalf("accepted name %q fails to encode: %v", name, err)
		}
	})
}

// FuzzUnpackPooled differentially tests the pooled zero-alloc query
// decoder against the legacy decoder: both must accept exactly the
// same messages, and on acceptance agree on the header, the first
// question, and the extracted Client Subnet option — the fields the
// server's hot path reads. Any divergence would change the server's
// FORMERR behavior or answers depending on which decoder ran.
func FuzzUnpackPooled(f *testing.F) {
	seed := func(m *Message) {
		wire, err := m.Pack()
		if err == nil {
			f.Add(wire)
		}
	}
	seed(queryMessage(1, "www.site.example", TypeA))
	// Compression pointers: a response whose answer and authority
	// names all point back into the question.
	seed(&Message{
		Header:    Header{ID: 2, Response: true},
		Questions: []Question{{Name: "a.b.c.example.", Type: TypeA, Class: ClassIN}},
		Answers: []ResourceRecord{{
			Name: "a.b.c.example.", Type: TypeA, Class: ClassIN, TTL: 300,
			Data: A{Addr: netip.MustParseAddr("10.0.0.1")},
		}},
		Authority: []ResourceRecord{{
			Name: "example.", Type: TypeSOA, Class: ClassIN, TTL: 60,
			Data: SOA{MName: "ns.example.", RName: "root.example.", Serial: 1},
		}},
	})
	// ECS options, IPv4 and IPv6.
	ecs4 := queryMessage(3, "www.site.example", TypeA)
	_ = ecs4.SetClientSubnet(ClientSubnet{Prefix: netip.MustParsePrefix("192.0.2.0/24")}, 1232)
	seed(ecs4)
	ecs6 := queryMessage(4, "www.site.example", TypeAAAA)
	_ = ecs6.SetClientSubnet(ClientSubnet{Prefix: netip.MustParsePrefix("2001:db8::/48")}, 4096)
	seed(ecs6)
	// Raw hostile inputs: bare pointer, pointer chain, reserved label.
	f.Add([]byte{0xC0, 0x00})
	f.Add([]byte{0, 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 1, 'a', 0xC0, 12, 0, 1, 0, 1})
	f.Add([]byte{0, 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0x80, 0, 0, 1, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, legacyErr := Unpack(data)
		q := GetQuery()
		defer PutQuery(q)
		pooledErr := q.UnpackQuery(data)
		if (legacyErr == nil) != (pooledErr == nil) {
			t.Fatalf("accept/reject divergence: legacy err=%v, pooled err=%v", legacyErr, pooledErr)
		}
		if legacyErr != nil {
			return
		}
		if q.Header != m.Header {
			t.Fatalf("header divergence: legacy %+v, pooled %+v", m.Header, q.Header)
		}
		if q.QDCount != len(m.Questions) {
			t.Fatalf("question count divergence: legacy %d, pooled %d", len(m.Questions), q.QDCount)
		}
		if len(m.Questions) > 0 {
			lq := m.Questions[0]
			if string(q.Name) != lq.Name || q.Type != lq.Type || q.Class != lq.Class {
				t.Fatalf("first question divergence: legacy %+v, pooled {%q %v %v}",
					lq, q.Name, q.Type, q.Class)
			}
		}
		ecs, ok := m.ClientSubnet()
		if q.HasECS != ok {
			t.Fatalf("ECS presence divergence: legacy %v, pooled %v", ok, q.HasECS)
		}
		if ok && (q.ECS.Prefix != ecs.Prefix || q.ECS.ScopePrefixLen != ecs.ScopePrefixLen) {
			t.Fatalf("ECS value divergence: legacy %+v, pooled %+v", ecs, q.ECS)
		}
	})
}

// FuzzParseClientSubnet targets the ECS option parser.
func FuzzParseClientSubnet(f *testing.F) {
	good, _ := (ClientSubnet{Prefix: netip.MustParsePrefix("192.0.2.0/24")}).Pack()
	f.Add(good)
	f.Add([]byte{0, 2, 48, 0, 0x20, 0x01, 0x0d, 0xb8, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		cs, err := ParseClientSubnet(data)
		if err != nil {
			return
		}
		repacked, err := cs.Pack()
		if err != nil {
			t.Fatalf("accepted ECS %v fails to pack: %v", cs, err)
		}
		cs2, err := ParseClientSubnet(repacked)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if cs2.Prefix != cs.Prefix {
			t.Fatalf("prefix changed: %v vs %v", cs.Prefix, cs2.Prefix)
		}
	})
}

// FuzzParseECSOption drives the ECS option parser with a structured
// hostile input — arbitrary family, source/scope prefix lengths and
// address payload assembled into one option TLV — and holds every
// accepted option to the RFC 7871 invariants the server relies on:
// the parsed prefix is masked, within the family's bit width, packs
// back losslessly, and survives the scoped response echo
// (EchoClientSubnet) both standalone and embedded in a full message.
func FuzzParseECSOption(f *testing.F) {
	f.Add(uint16(1), uint8(24), uint8(0), []byte{10, 1, 2})
	f.Add(uint16(2), uint8(56), uint8(48), []byte{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0})
	f.Add(uint16(1), uint8(33), uint8(0), []byte{10, 1, 2, 3, 4})
	f.Add(uint16(3), uint8(8), uint8(8), []byte{10})
	f.Add(uint16(1), uint8(0), uint8(255), []byte{})
	f.Fuzz(func(t *testing.T, family uint16, srcBits, scope uint8, payload []byte) {
		data := make([]byte, 0, 4+len(payload))
		data = append(data, byte(family>>8), byte(family), srcBits, scope)
		data = append(data, payload...)
		cs, err := ParseClientSubnet(data)
		if err != nil {
			return
		}
		addr := cs.Prefix.Addr()
		if addr.Is4() && cs.Prefix.Bits() > 32 {
			t.Fatalf("accepted IPv4 prefix wider than 32 bits: %v", cs.Prefix)
		}
		if cs.Prefix != cs.Prefix.Masked() {
			t.Fatalf("accepted unmasked prefix %v", cs.Prefix)
		}
		echo := EchoClientSubnet(cs, uint8(cs.Prefix.Bits()))
		if echo.Prefix != cs.Prefix {
			t.Fatalf("echo changed the prefix: %v vs %v", echo.Prefix, cs.Prefix)
		}
		repacked, err := echo.Pack()
		if err != nil {
			t.Fatalf("accepted ECS %v fails to pack with scope: %v", cs, err)
		}
		cs2, err := ParseClientSubnet(repacked)
		if err != nil {
			t.Fatalf("re-parse of scoped echo failed: %v", err)
		}
		if cs2.Prefix != cs.Prefix || cs2.ScopePrefixLen != uint8(cs.Prefix.Bits()) {
			t.Fatalf("scoped echo round-trip drifted: %+v vs %+v", cs2, echo)
		}
		// The same option must survive a full message round trip.
		m := queryMessage(7, "example.com", TypeA)
		if err := m.SetClientSubnet(echo, MaxUDPPayload); err != nil {
			t.Fatalf("SetClientSubnet rejected accepted ECS: %v", err)
		}
		wire, err := m.Pack()
		if err != nil {
			t.Fatalf("pack with ECS failed: %v", err)
		}
		back, err := Unpack(wire)
		if err != nil {
			t.Fatalf("unpack with ECS failed: %v", err)
		}
		got, ok := back.ClientSubnet()
		if !ok || got.Prefix != cs.Prefix || got.ScopePrefixLen != echo.ScopePrefixLen {
			t.Fatalf("message round trip lost the scoped option: %+v ok=%v", got, ok)
		}
	})
}
