package dnswire

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestClientSubnetPackParse(t *testing.T) {
	tests := []struct {
		prefix string
	}{
		{"192.0.2.0/24"},
		{"10.0.0.0/8"},
		{"203.0.113.128/25"},
		{"2001:db8::/48"},
		{"2001:db8:1234::/64"},
	}
	for _, tt := range tests {
		p := netip.MustParsePrefix(tt.prefix)
		cs := ClientSubnet{Prefix: p}
		data, err := cs.Pack()
		if err != nil {
			t.Fatalf("%s: %v", tt.prefix, err)
		}
		got, err := ParseClientSubnet(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", tt.prefix, err)
		}
		if got.Prefix != p {
			t.Errorf("%s: round trip = %v", tt.prefix, got.Prefix)
		}
	}
}

func TestClientSubnetTruncatedAddressBytes(t *testing.T) {
	// A /24 must encode only 3 address octets (RFC 7871 §6).
	cs := ClientSubnet{Prefix: netip.MustParsePrefix("192.0.2.0/24")}
	data, err := cs.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4+3 {
		t.Errorf("encoded length = %d, want 7 (family+lens+3 octets)", len(data))
	}
	want := []byte{0, 1, 24, 0, 192, 0, 2}
	if !bytes.Equal(data, want) {
		t.Errorf("encoding = %v, want %v", data, want)
	}
}

func TestClientSubnetErrors(t *testing.T) {
	if _, err := (ClientSubnet{}).Pack(); err == nil {
		t.Error("invalid prefix should fail to pack")
	}
	bad := [][]byte{
		nil,
		{0, 1},                       // too short
		{0, 9, 24, 0, 1, 2, 3},       // unknown family
		{0, 1, 24, 0, 1},             // fewer octets than prefix needs
		{0, 1, 40, 0, 1, 2, 3, 4, 5}, // IPv4 prefix > 32
		{0, 2, 129, 0},               // IPv6 prefix > 128
	}
	for i, data := range bad {
		if _, err := ParseClientSubnet(data); err == nil {
			t.Errorf("bad ECS %d should fail", i)
		}
	}
}

func TestMessageClientSubnetRoundTrip(t *testing.T) {
	m := queryMessage(9, "www.site.example", TypeA)
	p := netip.MustParsePrefix("198.51.100.0/24")
	if err := m.SetClientSubnet(ClientSubnet{Prefix: p}, 1232); err != nil {
		t.Fatal(err)
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := got.ClientSubnet()
	if !ok {
		t.Fatal("ECS option lost in transit")
	}
	if cs.Prefix != p {
		t.Errorf("prefix = %v, want %v", cs.Prefix, p)
	}
	// The OPT record advertises the payload size via its class.
	var optFound bool
	for _, rr := range got.Additional {
		if rr.Type == TypeOPT {
			optFound = true
			if uint16(rr.Class) != 1232 {
				t.Errorf("advertised payload = %d, want 1232", rr.Class)
			}
		}
	}
	if !optFound {
		t.Fatal("no OPT record in additional section")
	}
}

func TestSetClientSubnetReplacesExisting(t *testing.T) {
	m := queryMessage(1, "x.example", TypeA)
	a := netip.MustParsePrefix("10.0.0.0/8")
	b := netip.MustParsePrefix("172.16.0.0/12")
	if err := m.SetClientSubnet(ClientSubnet{Prefix: a}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.SetClientSubnet(ClientSubnet{Prefix: b}, 0); err != nil {
		t.Fatal(err)
	}
	if len(m.Additional) != 1 {
		t.Fatalf("additional records = %d, want 1 (OPT replaced)", len(m.Additional))
	}
	cs, ok := m.ClientSubnet()
	if !ok || cs.Prefix != b {
		t.Errorf("prefix = %v, want %v", cs.Prefix, b)
	}
}

func TestClientSubnetAbsent(t *testing.T) {
	m := queryMessage(1, "x.example", TypeA)
	if _, ok := m.ClientSubnet(); ok {
		t.Error("message without OPT should have no ECS")
	}
	// OPT present but no ECS option.
	m.Additional = append(m.Additional, ResourceRecord{
		Name: ".", Type: TypeOPT, Class: Class(512),
		Data: OPT{Options: []EDNSOption{{Code: 99, Data: []byte{1}}}},
	})
	if _, ok := m.ClientSubnet(); ok {
		t.Error("OPT without ECS should have no ECS")
	}
}

func TestOPTUnknownOptionsPreserved(t *testing.T) {
	m := &Message{
		Header: Header{ID: 4},
		Additional: []ResourceRecord{{
			Name: ".", Type: TypeOPT, Class: Class(4096),
			Data: OPT{Options: []EDNSOption{
				{Code: 10, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}, // cookie
				{Code: 99, Data: nil},
			}},
		}},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	opt, ok := got.Additional[0].Data.(OPT)
	if !ok {
		t.Fatalf("data is %T", got.Additional[0].Data)
	}
	if len(opt.Options) != 2 || opt.Options[0].Code != 10 || len(opt.Options[0].Data) != 8 {
		t.Errorf("options = %+v", opt.Options)
	}
}

func TestUnpackOPTTruncated(t *testing.T) {
	if _, err := unpackOPT([]byte{0, 8, 0, 10, 1}); err == nil {
		t.Error("short option payload should fail")
	}
	if _, err := unpackOPT([]byte{0, 8}); err == nil {
		t.Error("short option header should fail")
	}
}

func TestClientSubnetPackParseProperty(t *testing.T) {
	f := func(a, b, c, d byte, bitsRaw uint8) bool {
		bits := int(bitsRaw % 33)
		addr := netip.AddrFrom4([4]byte{a, b, c, d})
		p, err := addr.Prefix(bits)
		if err != nil {
			return false
		}
		data, err := (ClientSubnet{Prefix: p}).Pack()
		if err != nil {
			return false
		}
		got, err := ParseClientSubnet(data)
		if err != nil {
			return false
		}
		return got.Prefix == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
