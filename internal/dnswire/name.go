package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Name limits from RFC 1035 §2.3.4.
const (
	maxLabelLen = 63
	maxNameLen  = 255
	// compression pointers are 14-bit offsets
	maxPointerOffset = 1<<14 - 1
	// maxPointerJumps bounds pointer chains while decoding, preventing
	// loops in hostile messages.
	maxPointerJumps = 64
)

var (
	// ErrNameTooLong reports a domain name over 255 octets.
	ErrNameTooLong = errors.New("dnswire: name too long")
	// ErrLabelTooLong reports a label over 63 octets.
	ErrLabelTooLong = errors.New("dnswire: label too long")
	// ErrBadName reports a syntactically invalid name.
	ErrBadName = errors.New("dnswire: bad name")
	// ErrTruncatedMessage reports a message shorter than its contents
	// claim.
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	// ErrPointerLoop reports a compression pointer loop.
	ErrPointerLoop = errors.New("dnswire: compression pointer loop")
)

// CanonicalName normalizes a domain name for comparison and storage:
// lower-cased, exactly one trailing dot. The root is ".".
func CanonicalName(s string) string {
	s = strings.ToLower(strings.TrimSuffix(s, "."))
	if s == "" {
		return "."
	}
	return s + "."
}

// splitLabels returns the labels of a canonical or plain name, without
// the trailing root label.
func splitLabels(name string) []string {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// validateName checks label and name limits.
func validateName(name string) error {
	labels := splitLabels(name)
	total := 1 // root byte
	for _, l := range labels {
		if len(l) == 0 {
			return fmt.Errorf("%w: empty label in %q", ErrBadName, name)
		}
		if len(l) > maxLabelLen {
			return fmt.Errorf("%w: %q", ErrLabelTooLong, l)
		}
		total += len(l) + 1
	}
	if total > maxNameLen {
		return fmt.Errorf("%w: %q", ErrNameTooLong, name)
	}
	return nil
}

// packName appends the wire encoding of name to buf, using the
// compression map cmap (suffix → message offset) when a suffix was
// already emitted. New suffix offsets are recorded in cmap.
func packName(buf []byte, name string, cmap map[string]int) ([]byte, error) {
	name = CanonicalName(name)
	if err := validateName(name); err != nil {
		return nil, err
	}
	labels := splitLabels(name)
	for i := range labels {
		suffix := strings.Join(labels[i:], ".") + "."
		if off, ok := cmap[suffix]; ok && off <= maxPointerOffset {
			buf = append(buf, 0xC0|byte(off>>8), byte(off))
			return buf, nil
		}
		if len(buf) <= maxPointerOffset {
			cmap[suffix] = len(buf)
		}
		buf = append(buf, byte(len(labels[i])))
		buf = append(buf, labels[i]...)
	}
	buf = append(buf, 0) // root
	return buf, nil
}

// unpackName decodes a possibly compressed name starting at off in
// msg. It returns the canonical name and the offset just past the name
// in the original (non-pointer) byte stream.
func unpackName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumped := false
	next := off
	jumps := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				next = off + 1
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			if err := validateName(name); err != nil {
				return "", 0, err
			}
			return name, next, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if !jumped {
				next = off + 2
				jumped = true
			}
			jumps++
			if jumps > maxPointerJumps {
				return "", 0, ErrPointerLoop
			}
			if ptr >= off {
				// Forward or self pointers are always invalid and a
				// common loop vector.
				return "", 0, ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("%w: reserved label type 0x%02x", ErrBadName, b&0xC0)
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			sb.Write(toLowerASCII(msg[off+1 : off+1+l]))
			sb.WriteByte('.')
			off += 1 + l
			if !jumped {
				next = off
			}
		}
	}
}

// toLowerASCII lower-cases ASCII letters without allocation for
// already-lowercase input being unnecessary to optimize; names are
// short.
func toLowerASCII(b []byte) []byte {
	out := make([]byte, len(b))
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return out
}
