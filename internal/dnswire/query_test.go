package dnswire

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"testing"
)

// diffQuery asserts UnpackQuery and Unpack agree on one message:
// same accept/reject outcome, and on accept the same header, first
// question, and ECS extraction.
func diffQuery(t *testing.T, wire []byte) {
	t.Helper()
	m, legacyErr := Unpack(wire)
	q := GetQuery()
	defer PutQuery(q)
	pooledErr := q.UnpackQuery(wire)
	if (legacyErr == nil) != (pooledErr == nil) {
		t.Fatalf("decoder disagreement: legacy err=%v, pooled err=%v (wire %x)", legacyErr, pooledErr, wire)
	}
	if legacyErr != nil {
		return
	}
	if q.Header != m.Header {
		t.Fatalf("header mismatch: legacy %+v, pooled %+v", m.Header, q.Header)
	}
	if q.QDCount != len(m.Questions) {
		t.Fatalf("question count mismatch: legacy %d, pooled %d", len(m.Questions), q.QDCount)
	}
	if len(m.Questions) > 0 {
		lq := m.Questions[0]
		if string(q.Name) != lq.Name || q.Type != lq.Type || q.Class != lq.Class {
			t.Fatalf("first question mismatch: legacy %+v, pooled {%q %v %v}", lq, q.Name, q.Type, q.Class)
		}
	}
	ecs, ok := m.ClientSubnet()
	if q.HasECS != ok {
		t.Fatalf("ECS presence mismatch: legacy %v, pooled %v", ok, q.HasECS)
	}
	if ok && (q.ECS.Prefix != ecs.Prefix || q.ECS.ScopePrefixLen != ecs.ScopePrefixLen) {
		t.Fatalf("ECS mismatch: legacy %+v, pooled %+v", ecs, q.ECS)
	}
}

func mustPackMsg(t *testing.T, m *Message) []byte {
	t.Helper()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestUnpackQueryMatchesUnpack(t *testing.T) {
	simple := mustPackMsg(t, queryMessage(7, "www.site.example", TypeA))
	withECS := queryMessage(8, "WWW.Site.Example", TypeA)
	if err := withECS.SetClientSubnet(ClientSubnet{
		Prefix: netip.MustParsePrefix("192.0.2.0/24"),
	}, 1232); err != nil {
		t.Fatal(err)
	}
	withECS6 := queryMessage(9, "www.site.example", TypeANY)
	if err := withECS6.SetClientSubnet(ClientSubnet{
		Prefix:         netip.MustParsePrefix("2001:db8::/48"),
		ScopePrefixLen: 0,
	}, 4096); err != nil {
		t.Fatal(err)
	}
	response := &Message{
		Header:    Header{ID: 3, Response: true, Authoritative: true, RecursionDesired: true},
		Questions: []Question{{Name: "a.b.example.", Type: TypeA, Class: ClassIN}},
		Answers: []ResourceRecord{{
			Name: "a.b.example.", Type: TypeA, Class: ClassIN, TTL: 30,
			Data: A{Addr: netip.MustParseAddr("10.0.0.9")},
		}},
		Authority: []ResourceRecord{{
			Name: "example.", Type: TypeSOA, Class: ClassIN, TTL: 60,
			Data: SOA{MName: "ns.example.", RName: "root.example.", Serial: 5},
		}},
		Additional: []ResourceRecord{{
			Name: "x.example.", Type: TypeTXT, Class: ClassIN, TTL: 1,
			Data: TXT{Strings: []string{"hello"}},
		}},
	}
	multiQ := &Message{
		Header: Header{ID: 4},
		Questions: []Question{
			{Name: "one.example.", Type: TypeA, Class: ClassIN},
			{Name: "two.example.", Type: TypeAAAA, Class: ClassIN},
		},
	}
	cases := map[string][]byte{
		"simple A query":        simple,
		"mixed-case ECS v4":     mustPackMsg(t, withECS),
		"ECS v6 ANY":            mustPackMsg(t, withECS6),
		"full response":         mustPackMsg(t, response),
		"two questions":         mustPackMsg(t, multiQ),
		"root name query":       mustPackMsg(t, queryMessage(5, ".", TypeNS)),
		"empty message":         make([]byte, headerLen),
		"short header":          {0, 1, 2},
		"truncated question":    simple[:len(simple)-3],
		"compression pointer":   {0xC0, 0x00},
		"counts without bodies": {0, 1, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0},
	}
	// Hostile names: a forward pointer, a pointer loop, a reserved
	// label type, and an over-long compression chain.
	hdr := func(qd uint16) []byte {
		b := make([]byte, headerLen)
		binary.BigEndian.PutUint16(b[4:], qd)
		return b
	}
	fwd := append(hdr(1), 0xC0, 0x20, 0, 1, 0, 1)
	cases["forward pointer"] = fwd
	loop := append(hdr(1), 3, 'a', 'b', 'c', 0xC0, 12, 0, 1, 0, 1)
	cases["self-referential chain"] = loop
	reserved := append(hdr(1), 0x80, 0, 0, 1, 0, 1)
	cases["reserved label type"] = reserved
	// A name over 255 octets via repeated 63-byte labels.
	long := hdr(1)
	for i := 0; i < 5; i++ {
		long = append(long, 63)
		long = append(long, bytes.Repeat([]byte{'a'}, 63)...)
	}
	long = append(long, 0, 0, 1, 0, 1)
	cases["over-long name"] = long
	// Bad ECS payload inside an otherwise valid OPT: family 9.
	badECS := queryMessage(6, "www.site.example", TypeA)
	wire := mustPackMsg(t, badECS)
	// Append an OPT RR by hand: root name, TypeOPT, class 512, TTL 0,
	// one option (code 8, 4 bytes of junk with an unknown family).
	wire = append(wire, 0, 0, 41, 2, 0, 0, 0, 0, 0, 0, 8, 0, 8, 0, 4, 0, 9, 24, 0)
	binary.BigEndian.PutUint16(wire[10:], 1) // ARCOUNT = 1
	cases["malformed ECS option"] = wire

	for name, w := range cases {
		t.Run(name, func(t *testing.T) { diffQuery(t, w) })
	}
}

// TestUnpackQueryReuse proves state from one decode cannot leak into
// the next on a recycled Query.
func TestUnpackQueryReuse(t *testing.T) {
	q := GetQuery()
	defer PutQuery(q)

	withECS := queryMessage(1, "long.name.with.many.labels.example", TypeA)
	if err := withECS.SetClientSubnet(ClientSubnet{
		Prefix: netip.MustParsePrefix("198.51.100.0/24"),
	}, 1232); err != nil {
		t.Fatal(err)
	}
	if err := q.UnpackQuery(mustPackMsg(t, withECS)); err != nil {
		t.Fatal(err)
	}
	if !q.HasECS || string(q.Name) != "long.name.with.many.labels.example." {
		t.Fatalf("first decode wrong: name %q, ecs %v", q.Name, q.HasECS)
	}

	plain := mustPackMsg(t, queryMessage(2, "x.example", TypeTXT))
	if err := q.UnpackQuery(plain); err != nil {
		t.Fatal(err)
	}
	if q.HasECS {
		t.Error("ECS leaked from the previous decode")
	}
	if string(q.Name) != "x.example." || q.Type != TypeTXT {
		t.Errorf("second decode wrong: name %q type %v", q.Name, q.Type)
	}
}

// TestUnpackQueryZeroAlloc is the package-level contract the server's
// hot path depends on: decoding a typical query (with and without
// ECS) into a reused Query allocates nothing.
func TestUnpackQueryZeroAlloc(t *testing.T) {
	plain := mustPackMsg(t, queryMessage(7, "www.site.example", TypeA))
	withECS := queryMessage(8, "www.site.example", TypeA)
	if err := withECS.SetClientSubnet(ClientSubnet{
		Prefix: netip.MustParsePrefix("192.0.2.0/24"),
	}, 1232); err != nil {
		t.Fatal(err)
	}
	ecsWire := mustPackMsg(t, withECS)
	q := GetQuery()
	defer PutQuery(q)
	for name, wire := range map[string][]byte{"plain": plain, "ecs": ecsWire} {
		wire := wire
		allocs := testing.AllocsPerRun(200, func() {
			if err := q.UnpackQuery(wire); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s query decode allocates %.1f times per op, want 0", name, allocs)
		}
	}
}

func BenchmarkUnpackQuery(b *testing.B) {
	m := queryMessage(7, "www.site.example", TypeA)
	if err := m.SetClientSubnet(ClientSubnet{
		Prefix: netip.MustParsePrefix("192.0.2.0/24"),
	}, 1232); err != nil {
		b.Fatal(err)
	}
	wire, err := m.Pack()
	if err != nil {
		b.Fatal(err)
	}
	q := GetQuery()
	defer PutQuery(q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.UnpackQuery(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpackLegacy(b *testing.B) {
	m := queryMessage(7, "www.site.example", TypeA)
	if err := m.SetClientSubnet(ClientSubnet{
		Prefix: netip.MustParsePrefix("192.0.2.0/24"),
	}, 1232); err != nil {
		b.Fatal(err)
	}
	wire, err := m.Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}
