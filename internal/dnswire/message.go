package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// cmapPool recycles name-compression maps across AppendPack calls, so
// repeated packing with recycled buffers allocates nothing: map keys
// are substrings of the message's own names and are cleared before the
// map returns to the pool.
var cmapPool = sync.Pool{
	New: func() any { return make(map[string]int, 8) },
}

// Limits guarding against hostile messages.
const (
	headerLen = 12
	// maxRecords bounds any single section while decoding.
	maxRecords = 4096
	// MaxUDPPayload is the classic 512-byte UDP message limit
	// (RFC 1035 §4.2.1); the server truncates above it.
	MaxUDPPayload = 512
)

// ErrTooManyRecords reports a section count over the decoder's bound.
var ErrTooManyRecords = errors.New("dnswire: too many records")

// header flag bit masks within the 16-bit flags word.
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
)

// Pack encodes the message with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 128))
}

// AppendPack encodes the message into dst, reusing its capacity, and
// returns the extended slice. It is the allocation-free variant of
// Pack for callers that recycle buffers (the server's query hot path
// passes pooled buffers as dst[:0]). Name-compression pointer offsets
// are computed from the start of dst, so dst must be positioned at the
// start of the DNS message: pass a zero-length slice.
func (m *Message) AppendPack(dst []byte) ([]byte, error) {
	var zero [headerLen]byte
	buf := append(dst, zero[:]...)
	hdr := buf[len(dst):]
	binary.BigEndian.PutUint16(hdr[0:], m.Header.ID)
	var flags uint16
	if m.Header.Response {
		flags |= flagQR
	}
	flags |= uint16(m.Header.OpCode&0xF) << 11
	if m.Header.Authoritative {
		flags |= flagAA
	}
	if m.Header.Truncated {
		flags |= flagTC
	}
	if m.Header.RecursionDesired {
		flags |= flagRD
	}
	if m.Header.RecursionAvailable {
		flags |= flagRA
	}
	flags |= uint16(m.Header.RCode & 0xF)
	binary.BigEndian.PutUint16(hdr[2:], flags)
	binary.BigEndian.PutUint16(hdr[4:], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(hdr[6:], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(hdr[8:], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(hdr[10:], uint16(len(m.Additional)))

	cmap := cmapPool.Get().(map[string]int)
	defer func() {
		clear(cmap)
		cmapPool.Put(cmap)
	}()
	var err error
	for _, q := range m.Questions {
		buf, err = packName(buf, q.Name, cmap)
		if err != nil {
			return nil, fmt.Errorf("question %q: %w", q.Name, err)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, section := range [][]ResourceRecord{m.Answers, m.Authority, m.Additional} {
		for _, rr := range section {
			buf, err = packRR(buf, rr, cmap)
			if err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func packRR(buf []byte, rr ResourceRecord, cmap map[string]int) ([]byte, error) {
	if rr.Data == nil {
		return nil, fmt.Errorf("dnswire: record %q has no data", rr.Name)
	}
	var err error
	buf, err = packName(buf, rr.Name, cmap)
	if err != nil {
		return nil, fmt.Errorf("record %q: %w", rr.Name, err)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type))
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
	// Reserve the RDLENGTH slot, pack, then patch the length.
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	buf, err = rr.Data.packData(buf, cmap)
	if err != nil {
		return nil, fmt.Errorf("record %q: %w", rr.Name, err)
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > 0xFFFF {
		return nil, fmt.Errorf("dnswire: record %q RDATA too large", rr.Name)
	}
	binary.BigEndian.PutUint16(buf[lenAt:], uint16(rdlen))
	return buf, nil
}

// Unpack decodes a wire-format message.
func Unpack(msg []byte) (*Message, error) {
	if len(msg) < headerLen {
		return nil, ErrTruncatedMessage
	}
	var m Message
	m.Header.ID = binary.BigEndian.Uint16(msg[0:])
	flags := binary.BigEndian.Uint16(msg[2:])
	m.Header.Response = flags&flagQR != 0
	m.Header.OpCode = OpCode(flags >> 11 & 0xF)
	m.Header.Authoritative = flags&flagAA != 0
	m.Header.Truncated = flags&flagTC != 0
	m.Header.RecursionDesired = flags&flagRD != 0
	m.Header.RecursionAvailable = flags&flagRA != 0
	m.Header.RCode = RCode(flags & 0xF)
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))
	if qd > maxRecords || an > maxRecords || ns > maxRecords || ar > maxRecords {
		return nil, ErrTooManyRecords
	}

	off := headerLen
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = unpackName(msg, off)
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		if off+4 > len(msg) {
			return nil, ErrTruncatedMessage
		}
		q.Type = Type(binary.BigEndian.Uint16(msg[off:]))
		q.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	for _, sec := range []struct {
		n   int
		dst *[]ResourceRecord
	}{{an, &m.Answers}, {ns, &m.Authority}, {ar, &m.Additional}} {
		for i := 0; i < sec.n; i++ {
			var rr ResourceRecord
			rr, off, err = unpackRR(msg, off)
			if err != nil {
				return nil, err
			}
			*sec.dst = append(*sec.dst, rr)
		}
	}
	return &m, nil
}

func unpackRR(msg []byte, off int) (ResourceRecord, int, error) {
	var rr ResourceRecord
	var err error
	rr.Name, off, err = unpackName(msg, off)
	if err != nil {
		return rr, 0, err
	}
	if off+10 > len(msg) {
		return rr, 0, ErrTruncatedMessage
	}
	rr.Type = Type(binary.BigEndian.Uint16(msg[off:]))
	rr.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
	rr.TTL = binary.BigEndian.Uint32(msg[off+4:])
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdlen > len(msg) {
		return rr, 0, ErrTruncatedMessage
	}
	rr.Data, err = unpackRData(msg, off, rdlen, rr.Type)
	if err != nil {
		return rr, 0, fmt.Errorf("record %q: %w", rr.Name, err)
	}
	return rr, off + rdlen, nil
}
