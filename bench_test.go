package dnslb_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"dnslb"
	"dnslb/internal/core"
	"dnslb/internal/dnswire"
	"dnslb/internal/experiments"
	"dnslb/internal/sim"
	"dnslb/internal/simcore"
)

// benchOptions are the per-iteration experiment settings used by the
// figure benchmarks: one simulated hour, one replication. Regenerating
// the paper's full 5-hour/3-replication data is `dnslb-bench -exp all`.
func benchOptions() experiments.Options {
	o := experiments.QuickOptions()
	o.CurvePoints = 11
	return o
}

func benchFigure(b *testing.B, runner experiments.Runner) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seed = uint64(i) + 1
		fig, err := runner(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatal("figure produced no series")
		}
	}
}

// BenchmarkTable2Vectors regenerates the paper's Table 2 capacity
// vectors (the construction is cheap; this benchmark pins its cost and
// doubles as its regeneration target).
func BenchmarkTable2Vectors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) != 4 {
			b.Fatal("table 2 must have four heterogeneity levels")
		}
	}
}

// BenchmarkFigure1 regenerates Figure 1: the cumulative frequency of
// the maximum utilization for the deterministic algorithms at 20%
// heterogeneity.
func BenchmarkFigure1(b *testing.B) { benchFigure(b, experiments.Figure1) }

// BenchmarkFigure2 regenerates Figure 2: the probabilistic algorithms
// at 35% heterogeneity.
func BenchmarkFigure2(b *testing.B) { benchFigure(b, experiments.Figure2) }

// BenchmarkFigure3 regenerates Figure 3: sensitivity to system
// heterogeneity (20-65%), including the DAL baseline.
func BenchmarkFigure3(b *testing.B) { benchFigure(b, experiments.Figure3) }

// BenchmarkFigure4 regenerates Figure 4: sensitivity to the minimum
// TTL imposed by non-cooperative name servers at 20% heterogeneity.
func BenchmarkFigure4(b *testing.B) { benchFigure(b, experiments.Figure4) }

// BenchmarkFigure5 regenerates Figure 5: minimum-TTL sensitivity at
// 50% heterogeneity.
func BenchmarkFigure5(b *testing.B) { benchFigure(b, experiments.Figure5) }

// BenchmarkFigure6 regenerates Figure 6: sensitivity to hidden-load
// estimation error at 20% heterogeneity.
func BenchmarkFigure6(b *testing.B) { benchFigure(b, experiments.Figure6) }

// BenchmarkFigure7 regenerates Figure 7: estimation-error sensitivity
// at 50% heterogeneity.
func BenchmarkFigure7(b *testing.B) { benchFigure(b, experiments.Figure7) }

// Extension experiments (beyond the paper; see DESIGN.md).

// BenchmarkExtDomains regenerates the connected-domain sweep K=10–100.
func BenchmarkExtDomains(b *testing.B) { benchFigure(b, experiments.ExtDomains) }

// BenchmarkExtServers regenerates the cluster-size sweep N=5–17.
func BenchmarkExtServers(b *testing.B) { benchFigure(b, experiments.ExtServers) }

// BenchmarkExtLoad regenerates the offered-load (think time) sweep.
func BenchmarkExtLoad(b *testing.B) { benchFigure(b, experiments.ExtLoad) }

// BenchmarkExtClasses regenerates the TTL/i class-count ablation.
func BenchmarkExtClasses(b *testing.B) { benchFigure(b, experiments.ExtClasses) }

// BenchmarkExtAlarm regenerates the alarm-threshold ablation.
func BenchmarkExtAlarm(b *testing.B) { benchFigure(b, experiments.ExtAlarm) }

// BenchmarkExtWindow regenerates the metric-window ablation.
func BenchmarkExtWindow(b *testing.B) { benchFigure(b, experiments.ExtWindow) }

// BenchmarkExtEstimator regenerates the oracle-vs-estimator study.
func BenchmarkExtEstimator(b *testing.B) { benchFigure(b, experiments.ExtEstimator) }

// BenchmarkExtBaselines regenerates the DAL/MRL baseline comparison.
func BenchmarkExtBaselines(b *testing.B) { benchFigure(b, experiments.ExtBaselines) }

// BenchmarkSimulation5h measures one full paper-scale run (5 simulated
// hours, ~620k events) of the best-performing policy.
func BenchmarkSimulation5h(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig("DRR2-TTL/S_K")
		cfg.Seed = uint64(i) + 1
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.EventsFired), "events/run")
		}
	}
}

// BenchmarkSchedulerDecision measures a single DNS scheduling decision
// for each policy family — the per-address-request cost a real
// deployment pays.
func BenchmarkSchedulerDecision(b *testing.B) {
	for _, name := range []string{"RR", "RR2", "PRR2-TTL/K", "DRR2-TTL/S_K", "DAL"} {
		b.Run(name, func(b *testing.B) {
			cluster, err := core.ScaledCluster(7, 35, 500)
			if err != nil {
				b.Fatal(err)
			}
			state, err := core.NewState(cluster, 20)
			if err != nil {
				b.Fatal(err)
			}
			if err := state.SetWeights(simcore.ZipfWeights(20, 1)); err != nil {
				b.Fatal(err)
			}
			now := 0.0
			policy, err := core.NewPolicy(core.PolicyConfig{
				Name:  name,
				State: state,
				Rand:  simcore.NewStream(1, "bench"),
				Now:   func() float64 { now += 0.01; return now },
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := policy.Schedule(i % 20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleParallel measures concurrent scheduling decisions
// against one shared policy — the contention profile of the lock-free
// query path. Compare -cpu 1 with -cpu N: the snapshot design keeps
// per-decision cost flat instead of serializing behind a policy mutex.
func BenchmarkScheduleParallel(b *testing.B) {
	for _, name := range []string{"RR", "PRR2-TTL/K", "DRR2-TTL/S_K"} {
		b.Run(name, func(b *testing.B) {
			cluster, err := core.ScaledCluster(7, 35, 500)
			if err != nil {
				b.Fatal(err)
			}
			state, err := core.NewState(cluster, 20)
			if err != nil {
				b.Fatal(err)
			}
			if err := state.SetWeights(simcore.ZipfWeights(20, 1)); err != nil {
				b.Fatal(err)
			}
			var tick atomic.Int64
			policy, err := core.NewPolicy(core.PolicyConfig{
				Name:  name,
				State: state,
				Rand:  simcore.NewStream(1, "bench"),
				Now:   func() float64 { return float64(tick.Add(1)) / 1e4 },
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				domain := 0
				for pb.Next() {
					if _, err := policy.Schedule(domain); err != nil {
						b.Fatal(err)
					}
					domain = (domain + 1) % 20
				}
			})
		})
	}
}

// BenchmarkDNSWirePack measures encoding a typical authoritative
// response.
func BenchmarkDNSWirePack(b *testing.B) {
	m := responseMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDNSWireUnpack measures decoding the same response.
func BenchmarkDNSWireUnpack(b *testing.B) {
	wire, err := responseMessage().Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dnswire.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func responseMessage() *dnswire.Message {
	return &dnswire.Message{
		Header: dnswire.Header{ID: 1, Response: true, Authoritative: true},
		Questions: []dnswire.Question{
			{Name: "www.site.example.", Type: dnswire.TypeA, Class: dnswire.ClassIN},
		},
		Answers: []dnswire.ResourceRecord{{
			Name: "www.site.example.", Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: 240, Data: mustA("10.0.0.1"),
		}},
	}
}

func mustA(s string) dnswire.A {
	var a dnswire.A
	if err := a.Addr.UnmarshalText([]byte(s)); err != nil {
		panic(err)
	}
	return a
}

// BenchmarkEngineEvents measures the raw discrete-event engine
// throughput: schedule-and-fire of chained events.
func BenchmarkEngineEvents(b *testing.B) {
	s := simcore.New(1)
	var tick func()
	fired := 0
	tick = func() {
		fired++
		s.Schedule(1, tick)
	}
	s.Schedule(0, tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	if fired == 0 {
		b.Fatal("no events fired")
	}
}

// Example of using the public API; also keeps the facade's quickstart
// in the doc comment honest.
func Example() {
	cfg := dnslb.DefaultSimConfig("DRR2-TTL/S_K")
	cfg.Duration = 900
	res, err := dnslb.RunSim(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.ProbMaxUnder(0.98) > 0.5)
	// Output: true
}
